//! The pure CP-protocol transition layer, shared by the simulator and
//! the `nvdimmc-model` exhaustive model checker.
//!
//! Everything in this module is a *pure* state machine: no wall clock,
//! no RNG, no bus, no DRAM. The driver side ([`DriverTxn`]) captures the
//! retransmit ladder — bounded attempts, exponential backoff, ack
//! matching — exactly as `ChannelShard::cp_transaction` executes it; the
//! FPGA side ([`FpgaProto`]) captures mailbox classification — phase
//! novelty, retransmit detection by transaction key, garbage dedup — and
//! completion accounting exactly as the window engine in
//! [`crate::fpga`] executes them. The simulator owns *when* these
//! transitions fire (refresh windows, FSM step delays, DMA timing); the
//! model checker owns *in which order* they fire (an adversarial
//! scheduler). Both drive the same decision logic, so a divergence
//! between the simulated protocol and the verified protocol cannot creep
//! in silently.
//!
//! Extracting this layer surfaced (and fixed) a real protocol hole: the
//! 4-bit phase cycles through 15 values, so attempt *k* and attempt
//! *k + 15* of the retransmit ladder publish under the same phase. An
//! ack word is a *persistent* DRAM location — the previous transaction's
//! ack sits there until the FPGA overwrites it — so a driver that
//! matched acks by phase alone would, on attempt 16 against a dead FPGA,
//! read the *previous transaction's* stale ack, see its own phase, and
//! declare the new transaction complete even though it never executed.
//! For a writeback that means data reported persistent that exists
//! nowhere. The fix is the sequence-number echo: the FPGA echoes the
//! command's `seq` in the ack word and [`DriverTxn::on_ack`] requires
//! both phase *and* seq to match. Phases alias every 15 publishes and
//! seqs advance per transaction, so a stale ack can never satisfy both.
//! `nvdimmc-model` keeps the phase-only variant reproducible (see its
//! `legacy_phase_match` knob) as the regression corpus for this bug.

use crate::cp::{CpAck, CpCommand, CpOpcode};
use crate::faults::RecoveryParams;

/// What the driver should make of a polled ack word, given the command
/// it is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// Not an answer to the outstanding attempt (stale phase or foreign
    /// sequence number): keep waiting.
    Ignored,
    /// The FPGA completed the transaction successfully.
    Accepted {
        /// True when at least one retransmit preceded the accepted ack
        /// (the `cp_recovered` ledger counter).
        recovered: bool,
    },
    /// The FPGA completed the transaction with a failure verdict. A nack
    /// is an answer, not a loss: the driver surfaces it immediately
    /// instead of retransmitting.
    Nacked {
        /// The ack status code (see [`crate::cp::ACK_OK`] siblings).
        code: u8,
    },
}

/// What the driver does when an attempt's window budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// Publish the same transaction again under a fresh phase, with the
    /// attempt's window budget grown by the backoff multiplier.
    Retransmit,
    /// The retransmit budget is exhausted: the shard degrades and the
    /// transaction surfaces as [`crate::CoreError::CpTimeout`].
    Exhausted,
}

/// Matches an ack word against the attempt that is waiting for it.
///
/// This is *the* acceptance predicate of the protocol: phase equality
/// proves the ack answers the current publish, and the sequence-number
/// echo proves it answers the current *transaction* — a stale ack left
/// in the mailbox by an earlier transaction can alias the 4-bit phase
/// (it wraps every 15 publishes) but never the 8-bit seq as well.
pub fn ack_matches(cmd: &CpCommand, ack: &CpAck) -> bool {
    ack.phase == cmd.phase && ack.seq == cmd.seq
}

/// Driver-side state of one CP transaction: the retransmit ladder of
/// `cp_transaction`, with the timing stripped out.
///
/// The caller supplies phases (the shard's rolling 4-bit counter) and
/// reports elapsed ack-poll windows; this type decides everything else —
/// when an attempt times out, whether to retransmit or give up, and
/// whether a polled ack answers this transaction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DriverTxn {
    cmd: CpCommand,
    /// 0-based attempt index (0 = initial publish).
    attempt: u32,
    /// Window budget of the current attempt.
    timeout_windows: u32,
    /// Ack-poll windows consumed by the current attempt.
    windows_waited: u32,
    /// Total attempts allowed (1 initial + `cp_max_retransmits`).
    max_attempts: u32,
    /// Backoff multiplier applied to the window budget per retransmit.
    backoff: u32,
}

impl DriverTxn {
    /// Starts a transaction: the first attempt's command is `cmd` (the
    /// caller has already assigned its phase and seq) and the ladder
    /// parameters come from `rp`.
    pub fn new(cmd: CpCommand, rp: &RecoveryParams) -> Self {
        DriverTxn {
            cmd,
            attempt: 0,
            timeout_windows: rp.cp_timeout_windows.max(1),
            windows_waited: 0,
            max_attempts: rp.cp_max_retransmits + 1,
            backoff: rp.cp_backoff.max(1),
        }
    }

    /// The command of the current attempt (what sits in the mailbox).
    pub fn command(&self) -> &CpCommand {
        &self.cmd
    }

    /// 1-based count of publishes so far.
    pub fn attempts_made(&self) -> u32 {
        self.attempt + 1
    }

    /// Total attempts this ladder will make before giving up.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Classifies a polled ack word. `None` (an empty or mangled ack
    /// slot) is [`AckOutcome::Ignored`].
    pub fn on_ack(&self, ack: Option<&CpAck>) -> AckOutcome {
        let Some(ack) = ack else {
            return AckOutcome::Ignored;
        };
        if !ack_matches(&self.cmd, ack) {
            return AckOutcome::Ignored;
        }
        if ack.ok {
            AckOutcome::Accepted {
                recovered: self.attempt > 0,
            }
        } else {
            AckOutcome::Nacked { code: ack.code }
        }
    }

    /// Records one elapsed ack-poll window; returns `true` when the
    /// current attempt's budget is exhausted (attempt timeout).
    pub fn on_window(&mut self) -> bool {
        self.windows_waited += 1;
        self.windows_waited >= self.timeout_windows
    }

    /// Decides what follows an attempt timeout. On
    /// [`RetryOutcome::Retransmit`] the caller must assign the next
    /// phase via [`DriverTxn::republish`] before publishing.
    pub fn next_attempt(&mut self) -> RetryOutcome {
        if self.attempt + 1 >= self.max_attempts {
            return RetryOutcome::Exhausted;
        }
        self.attempt += 1;
        self.windows_waited = 0;
        self.timeout_windows = self.timeout_windows.saturating_mul(self.backoff);
        RetryOutcome::Retransmit
    }

    /// Re-publishes the transaction under a fresh phase: same seq, same
    /// fields — only the phase changes, so the FPGA can tell a
    /// retransmit from new work. Returns the command to publish.
    pub fn republish(&mut self, phase: u8) -> CpCommand {
        self.cmd.phase = phase;
        self.cmd
    }
}

/// The identity of the last completed transaction and its verdict:
/// `(txn_key, ok, code)`. Kept by the FPGA to replay acks for
/// retransmits of work it already executed.
pub type DoneTxn = ((u8, CpOpcode, u64, u64, Option<u64>), bool, u8);

/// What the FPGA should do with a polled mailbox word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollVerdict {
    /// Empty slot or a phase the FPGA has already seen: nothing to do.
    Stale,
    /// A non-empty word that does not decode. `count` is true the first
    /// time this particular garbage word is seen (the decode-failure
    /// counter must not inflate once per poll of the same word).
    Garbage {
        /// Whether to count a decode failure for this sighting.
        count: bool,
    },
    /// A retransmit of the transaction the FPGA just completed: its ack
    /// was lost. Re-ack under the new phase without re-executing.
    Replay {
        /// The retransmitted command (carrying the fresh phase).
        cmd: CpCommand,
        /// The recorded verdict of the original execution.
        ok: bool,
        /// The recorded status code of the original execution.
        code: u8,
    },
    /// Genuinely new work: execute it.
    Execute(CpCommand),
}

/// FPGA-side mailbox protocol state: phase tracking, retransmit
/// detection, garbage dedup, and completion recording — the decision
/// half of the window engine in [`crate::fpga`], with the DMA and
/// timing stripped out.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FpgaProto {
    /// Phase of the last command word acted on.
    last_phase: Option<u8>,
    /// Identity + verdict of the last completed transaction.
    last_done: Option<DoneTxn>,
    /// Last non-empty word that failed to decode (dedup).
    last_garbage: Option<[u8; 16]>,
}

impl FpgaProto {
    /// A fresh mailbox protocol state (new boot).
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a polled 16-byte command word and advances the phase /
    /// garbage tracking accordingly. Execution side effects (DMA, NAND,
    /// ack write) are the caller's job; completion must be reported back
    /// via [`FpgaProto::complete`].
    pub fn classify(&mut self, word: &[u8; 16]) -> PollVerdict {
        match CpCommand::decode(word) {
            Some(cmd) if Some(cmd.phase) != self.last_phase => {
                self.last_phase = Some(cmd.phase);
                self.last_garbage = None;
                if let Some((key, ok, code)) = self.last_done {
                    if key == cmd.txn_key() {
                        return PollVerdict::Replay { cmd, ok, code };
                    }
                }
                PollVerdict::Execute(cmd)
            }
            None if *word != [0u8; 16] => {
                let count = self.last_garbage != Some(*word);
                if count {
                    self.last_garbage = Some(*word);
                }
                PollVerdict::Garbage { count }
            }
            _ => PollVerdict::Stale,
        }
    }

    /// Records a completed transaction and builds its ack word — the
    /// seq echo lives here, so every ack (first execution or replay)
    /// carries the seq of the command it answers.
    pub fn complete(&mut self, cmd: &CpCommand, ok: bool, code: u8) -> CpAck {
        self.last_done = Some((cmd.txn_key(), ok, code));
        CpAck {
            phase: cmd.phase,
            seq: cmd.seq,
            ok,
            code,
        }
    }

    /// The recorded identity+verdict of the last completed transaction.
    pub fn last_done(&self) -> Option<DoneTxn> {
        self.last_done
    }

    /// The phase of the last command word acted on (`None` at boot).
    pub fn last_phase(&self) -> Option<u8> {
        self.last_phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::{ACK_ERR_NAND, ACK_OK};

    fn cmd(phase: u8, seq: u8) -> CpCommand {
        CpCommand {
            phase,
            seq,
            opcode: CpOpcode::Writeback,
            dram_slot: 3,
            nand_page: 9,
            wb_nand_page: None,
        }
    }

    fn rp(timeout: u32, retransmits: u32, backoff: u32) -> RecoveryParams {
        RecoveryParams {
            cp_timeout_windows: timeout,
            cp_max_retransmits: retransmits,
            cp_backoff: backoff,
            ..RecoveryParams::default()
        }
    }

    #[test]
    fn ack_requires_phase_and_seq() {
        let c = cmd(5, 42);
        let good = CpAck {
            phase: 5,
            seq: 42,
            ok: true,
            code: ACK_OK,
        };
        assert!(ack_matches(&c, &good));
        // Phase aliases but the seq gives the stale ack away.
        let stale = CpAck { seq: 41, ..good };
        assert!(!ack_matches(&c, &stale));
        let wrong_phase = CpAck { phase: 6, ..good };
        assert!(!ack_matches(&c, &wrong_phase));
    }

    #[test]
    fn ladder_times_out_retransmits_and_exhausts() {
        let mut txn = DriverTxn::new(cmd(1, 7), &rp(2, 1, 3));
        assert!(!txn.on_window());
        assert!(txn.on_window(), "2-window budget exhausted");
        assert_eq!(txn.next_attempt(), RetryOutcome::Retransmit);
        let re = txn.republish(2);
        assert_eq!(re.phase, 2);
        assert_eq!(re.seq, 7, "seq is stable across retransmits");
        // Backoff: budget is now 6 windows.
        for _ in 0..5 {
            assert!(!txn.on_window());
        }
        assert!(txn.on_window());
        assert_eq!(txn.next_attempt(), RetryOutcome::Exhausted);
        assert_eq!(txn.attempts_made(), 2);
    }

    #[test]
    fn accepted_ack_reports_recovery_after_retransmit() {
        let mut txn = DriverTxn::new(cmd(1, 7), &rp(1, 2, 1));
        let first = CpAck {
            phase: 1,
            seq: 7,
            ok: true,
            code: ACK_OK,
        };
        assert_eq!(
            txn.on_ack(Some(&first)),
            AckOutcome::Accepted { recovered: false }
        );
        assert!(txn.on_window());
        assert_eq!(txn.next_attempt(), RetryOutcome::Retransmit);
        let re = txn.republish(2);
        let replay = CpAck {
            phase: re.phase,
            seq: re.seq,
            ok: true,
            code: ACK_OK,
        };
        assert_eq!(
            txn.on_ack(Some(&replay)),
            AckOutcome::Accepted { recovered: true }
        );
    }

    #[test]
    fn nack_is_a_verdict_not_a_loss() {
        let txn = DriverTxn::new(cmd(3, 9), &rp(4, 4, 2));
        let nack = CpAck {
            phase: 3,
            seq: 9,
            ok: false,
            code: ACK_ERR_NAND,
        };
        assert_eq!(
            txn.on_ack(Some(&nack)),
            AckOutcome::Nacked { code: ACK_ERR_NAND }
        );
        assert_eq!(txn.on_ack(None), AckOutcome::Ignored);
    }

    #[test]
    fn fpga_executes_new_replays_retransmit_ignores_stale() {
        let mut f = FpgaProto::new();
        let c1 = cmd(1, 7);
        assert_eq!(f.classify(&c1.encode()), PollVerdict::Execute(c1));
        // Same phase again: stale, not a re-execution.
        assert_eq!(f.classify(&c1.encode()), PollVerdict::Stale);
        let ack = f.complete(&c1, true, ACK_OK);
        assert_eq!((ack.phase, ack.seq, ack.ok), (1, 7, true));
        // Retransmit under a new phase: replay the verdict.
        let c1r = cmd(2, 7);
        match f.classify(&c1r.encode()) {
            PollVerdict::Replay { cmd, ok, code } => {
                assert_eq!(cmd, c1r);
                assert!(ok);
                assert_eq!(code, ACK_OK);
            }
            v => panic!("expected replay, got {v:?}"),
        }
        // A different transaction under the next phase: execute.
        let c2 = CpCommand {
            nand_page: 10,
            ..cmd(3, 8)
        };
        assert_eq!(f.classify(&c2.encode()), PollVerdict::Execute(c2));
    }

    #[test]
    fn garbage_words_count_once_each() {
        let mut f = FpgaProto::new();
        let junk = [0xFFu8; 16];
        assert_eq!(f.classify(&junk), PollVerdict::Garbage { count: true });
        assert_eq!(f.classify(&junk), PollVerdict::Garbage { count: false });
        let mut junk2 = junk;
        junk2[0] = 0xEE;
        assert_eq!(f.classify(&junk2), PollVerdict::Garbage { count: true });
        assert_eq!(f.classify(&[0u8; 16]), PollVerdict::Stale);
    }

    #[test]
    fn stale_ack_from_previous_txn_never_matches() {
        // The bug the model checker found: txn N's ack persists in the
        // mailbox; txn N+1's 16th publish aliases its 4-bit phase. The
        // seq echo is what rejects it.
        let mut f = FpgaProto::new();
        let prev = cmd(5, 41);
        f.classify(&prev.encode());
        let stale_ack = f.complete(&prev, true, ACK_OK);
        // 15 publishes later the phase wraps back to 5.
        let next = cmd(5, 42);
        let txn = DriverTxn::new(next, &rp(1, 20, 1));
        assert_eq!(txn.on_ack(Some(&stale_ack)), AckOutcome::Ignored);
    }
}
