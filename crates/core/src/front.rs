//! The multi-channel front-end: N independent [`ChannelShard`]s behind
//! an address interleaver and a request scheduler.
//!
//! [`MultiChannelSystem`] is the multi-module generalisation the paper
//! sketches in §VII-A (capacity and bandwidth scale with the number of
//! modules, "similar to using multiple memory modules"): every global
//! operation is split by the [`InterleaveMap`] into per-shard segments,
//! routed through the bounded [`RequestScheduler`] queues, and served by
//! the owning shard on its own clock. Shards share *no* mutable state —
//! separate buses, iMCs, FPGA pipelines, caches and RNG streams — which
//! is what lets the [`ShardExecutor`](crate::exec::ShardExecutor) worker
//! pool serve many shards concurrently.
//!
//! The single-channel configuration ([`MultiChannelConfig::single`]) is
//! the paper's artifact and stays bit-identical to driving a bare
//! [`System`](crate::shard::System): one channel means one segment per
//! operation, an empty queue in front of an idle shard, and the exact
//! blocking call sequence of the monolith.
//!
//! Cross-shard persistence ordering: [`MultiChannelSystem::persist`]
//! flushes every involved shard first, then fences **all** shards, then
//! declares durability — an `sfence` is a CPU-global barrier, so its
//! ordering must span channels even though each shard journals its own
//! events.

use crate::config::{NvdimmCConfig, PAGE_BYTES};
use crate::error::CoreError;
use crate::health::{DegradeReason, FailoverPolicy, HealthState, HealthTransition, RebuildReport};
use crate::interleave::{InterleaveMap, Segment};
use crate::qos::TenantId;
use crate::sched::{ArbitrationPolicy, ReqKind, RequestScheduler, ShardRequest};
use crate::shard::{BlockDevice, ChannelShard, CrashPoint, PowerFailReport, SystemStats};
use nvdimmc_ddr::TraceEntry;
use nvdimmc_sim::{SimDuration, SimTime};

/// Golden-ratio odd multiplier used to derive per-shard RNG streams from
/// the base seed (shard 0 keeps the base seed so the single-channel
/// system is bit-identical to the monolith).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration for a [`MultiChannelSystem`].
#[derive(Debug, Clone)]
pub struct MultiChannelConfig {
    /// Per-shard system configuration (capacities are per channel).
    pub shard: NvdimmCConfig,
    /// Number of channels (= shards).
    pub channels: u32,
    /// Interleave stripe in bytes (multiple of 4 KB).
    pub granularity_bytes: u64,
    /// Bound on each shard's request queue.
    pub queue_depth: usize,
    /// Queue arbitration policy.
    pub policy: ArbitrationPolicy,
    /// Failover policy for degraded/overloaded shards. The default keeps
    /// PR 4 behaviour (no auto repair, no shedding).
    pub failover: FailoverPolicy,
}

impl MultiChannelConfig {
    /// The default deployment: one channel — the paper's artifact.
    pub fn single(shard: NvdimmCConfig) -> Self {
        Self::new(shard, 1)
    }

    /// `channels` page-interleaved channels with FCFS queues of depth 64.
    pub fn new(shard: NvdimmCConfig, channels: u32) -> Self {
        MultiChannelConfig {
            shard,
            channels,
            granularity_bytes: PAGE_BYTES,
            queue_depth: 64,
            policy: ArbitrationPolicy::Fcfs,
            failover: FailoverPolicy::default(),
        }
    }

    /// Overrides the interleave granularity.
    #[must_use]
    pub fn with_granularity(mut self, bytes: u64) -> Self {
        self.granularity_bytes = bytes;
        self
    }

    /// Overrides the arbitration policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ArbitrationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the failover policy.
    #[must_use]
    pub fn with_failover(mut self, failover: FailoverPolicy) -> Self {
        self.failover = failover;
        self
    }
}

/// N per-channel shards behind an interleaver and request scheduler.
///
/// # Example
///
/// ```
/// use nvdimmc_core::{BlockDevice, MultiChannelConfig, MultiChannelSystem, NvdimmCConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), 2);
/// let mut sys = MultiChannelSystem::new(cfg)?;
/// let data = vec![0x5Au8; 16384]; // spans all shards
/// sys.write_at(0, &data)?;
/// let mut out = vec![0u8; 16384];
/// sys.read_at(0, &mut out)?;
/// assert_eq!(out, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiChannelSystem {
    shards: Vec<ChannelShard>,
    map: InterleaveMap,
    sched: RequestScheduler,
    failover: FailoverPolicy,
}

impl MultiChannelSystem {
    /// Builds `cfg.channels` shards with decorrelated RNG streams.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the interleaver or shards.
    pub fn new(cfg: MultiChannelConfig) -> Result<Self, CoreError> {
        let MultiChannelConfig {
            shard: base,
            channels,
            granularity_bytes,
            queue_depth,
            policy,
            failover,
        } = cfg;
        let map = InterleaveMap::new(channels, granularity_bytes)?;
        let mut shards = Vec::with_capacity(channels as usize);
        for i in 0..channels {
            let mut c = base.clone();
            // Shard 0 keeps the base seed (single-channel bit-identity);
            // the rest get decorrelated media-model streams.
            c.seed = c.seed.wrapping_add(u64::from(i).wrapping_mul(SEED_STRIDE));
            let mut shard = ChannelShard::new(c)?;
            shard.set_shard_index(i);
            shards.push(shard);
        }
        let sched = RequestScheduler::new(channels as usize, queue_depth, policy);
        Ok(MultiChannelSystem {
            shards,
            map,
            sched,
            failover,
        })
    }

    /// The active failover policy.
    pub fn failover(&self) -> FailoverPolicy {
        self.failover
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.map.channels()
    }

    /// The interleaving map.
    pub fn map(&self) -> &InterleaveMap {
        &self.map
    }

    /// The request scheduler (queue stats, conservation counters).
    pub fn scheduler(&self) -> &RequestScheduler {
        &self.sched
    }

    /// The shards, immutably.
    pub fn shards(&self) -> &[ChannelShard] {
        &self.shards
    }

    /// The shards, mutably (experiment setup: prefault, journal toggles).
    pub fn shards_mut(&mut self) -> &mut [ChannelShard] {
        &mut self.shards
    }

    /// Split borrow for concurrent drivers: all shards mutably, the map,
    /// and the scheduler — lets a driver split requests globally and
    /// hand the shard slice to a [`ShardExecutor`](crate::exec::ShardExecutor).
    pub fn parts_mut(&mut self) -> (&mut [ChannelShard], &InterleaveMap, &mut RequestScheduler) {
        (&mut self.shards, &self.map, &mut self.sched)
    }

    /// Merged system statistics over all shards.
    pub fn stats(&self) -> SystemStats {
        let mut t = SystemStats::default();
        for s in &self.shards {
            t.merge(s.stats());
        }
        t
    }

    /// Attaches a fault plan: the plan's deterministic per-channel split
    /// hands every shard its own injector (and enables the per-shard CRC
    /// scrub), so the same seed always places the same faults on the same
    /// shards at the same operation counts.
    pub fn attach_fault_plan(&mut self, plan: &crate::faults::FaultPlan) {
        let injectors = plan.build_injectors(self.shards.len());
        for (shard, inj) in self.shards.iter_mut().zip(injectors) {
            shard.attach_injector(inj);
        }
    }

    /// Merged recovery statistics over all shards.
    pub fn recovery_stats(&self) -> crate::faults::RecoveryStats {
        let mut t = crate::faults::RecoveryStats::default();
        for s in &self.shards {
            t.merge(&s.recovery_stats());
        }
        t
    }

    /// Shards currently in degraded mode: `(index, reason, since)`.
    pub fn degraded_shards(&self) -> Vec<(usize, DegradeReason, SimTime)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.degraded_info().map(|(r, t)| (i, r, t)))
            .collect()
    }

    /// Per-shard health states (index = shard).
    pub fn health(&self) -> Vec<HealthState> {
        self.shards.iter().map(ChannelShard::health).collect()
    }

    /// Per-shard health-transition logs (index = shard).
    pub fn health_logs(&self) -> Vec<&[HealthTransition]> {
        self.shards.iter().map(ChannelShard::health_log).collect()
    }

    /// Per-shard rebuild reports (index = shard).
    pub fn rebuild_reports(&self) -> Vec<&[RebuildReport]> {
        self.shards
            .iter()
            .map(ChannelShard::rebuild_reports)
            .collect()
    }

    /// Repairs one degraded shard online: the scheduler's admission gate
    /// closes for exactly the duration of the rebuild (queued work is
    /// preserved; new arrivals bounce with a typed error), the shard runs
    /// its quiesce → re-handshake → scrub → audit sequence, and the gate
    /// reopens whether or not the shard was re-admitted — a still-degraded
    /// shard keeps refusing work itself, as in the pre-repair design.
    ///
    /// # Errors
    ///
    /// Propagates the shard's repair outcome: `DegradedShard` when the
    /// audit failed, fault-path errors when the rebuild itself was
    /// interrupted.
    pub fn repair_shard(&mut self, idx: usize) -> Result<RebuildReport, CoreError> {
        self.sched.set_admitted(idx, false);
        let out = self.shards[idx].repair();
        self.sched.set_admitted(idx, true);
        out
    }

    /// Repairs every degraded shard once, in index order. Returns the
    /// indices that were successfully re-admitted.
    ///
    /// # Errors
    ///
    /// Propagates `PowerInterrupted` (the caller must run the power-cycle
    /// path); per-shard repair failures are not errors — the shard simply
    /// stays degraded and absent from the returned list.
    pub fn repair_degraded(&mut self) -> Result<Vec<usize>, CoreError> {
        let degraded: Vec<usize> = self.degraded_shards().iter().map(|d| d.0).collect();
        let mut readmitted = Vec::new();
        for idx in degraded {
            match self.repair_shard(idx) {
                Ok(_) => readmitted.push(idx),
                Err(CoreError::PowerInterrupted) => return Err(CoreError::PowerInterrupted),
                Err(_) => {}
            }
        }
        Ok(readmitted)
    }

    /// True when every shard's scheduled and armed faults are exhausted.
    pub fn faults_quiescent(&self) -> bool {
        self.shards.iter().all(ChannelShard::faults_quiescent)
    }

    /// Merged shared-bus statistics over all shards.
    pub fn bus_stats(&self) -> nvdimmc_ddr::BusStats {
        let mut t = nvdimmc_ddr::BusStats::default();
        for s in &self.shards {
            t.merge(&s.bus_stats());
        }
        t
    }

    /// Merged DRAM-cache statistics over all shards.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        let mut t = crate::cache::CacheStats::default();
        for s in &self.shards {
            t.merge(&s.cache_stats());
        }
        t
    }

    /// Merged FPGA statistics over all shards.
    pub fn fpga_stats(&self) -> crate::fpga::FpgaStats {
        let mut t = crate::fpga::FpgaStats::default();
        for s in &self.shards {
            t.merge(&s.fpga_stats());
        }
        t
    }

    /// Toggles bus-trace capture on every shard. Disabling returns each
    /// shard's drained trace (see
    /// [`ChannelShard::set_trace_capture`]); the outer `Option` is `None`
    /// when enabling.
    pub fn set_trace_capture(&mut self, on: bool) -> Option<Vec<Vec<TraceEntry>>> {
        if on {
            for s in &mut self.shards {
                s.set_trace_capture(true);
            }
            None
        } else {
            Some(
                self.shards
                    .iter_mut()
                    .map(|s| s.set_trace_capture(false).unwrap_or_default())
                    .collect(),
            )
        }
    }

    /// Drains every shard's captured trace (index = shard).
    pub fn take_traces(&mut self) -> Vec<Vec<TraceEntry>> {
        self.shards
            .iter_mut()
            .map(ChannelShard::take_trace)
            .collect()
    }

    /// Toggles the persistence journal on every shard.
    pub fn set_persist_journal(&mut self, on: bool) {
        for s in &mut self.shards {
            s.set_persist_journal(on);
        }
    }

    /// Drains every shard's persistence journal (index = shard).
    pub fn take_persist_journals(&mut self) -> Vec<Vec<nvdimmc_host::PersistEvent>> {
        self.shards
            .iter_mut()
            .map(ChannelShard::take_persist_journal)
            .collect()
    }

    /// Pre-loads a global page into its shard's cache (experiment setup).
    ///
    /// # Errors
    ///
    /// Propagates fault-path errors.
    pub fn prefault(&mut self, page: u64) -> Result<(), CoreError> {
        let (shard, local) = self.map.locate(page * PAGE_BYTES);
        self.shards[shard as usize].prefault(local / PAGE_BYTES)
    }

    /// Application-level persistence across shards: flush every involved
    /// shard's lines, then fence **all** shards (an `sfence` is
    /// CPU-global, not per-channel), then declare durability.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range offsets.
    pub fn persist(&mut self, offset: u64, len: u64) -> Result<(), CoreError> {
        if len == 0 {
            return Ok(());
        }
        self.check_range(offset, len)?;
        let segs = self.map.split_range(offset, len);
        let mut flushed: Vec<(usize, u64, Vec<u64>)> = Vec::new();
        for seg in &segs {
            let idx = seg.shard as usize;
            let (lines, addrs) = self.shards[idx].persist_flush(seg.local_offset, seg.len)?;
            flushed.push((idx, lines, addrs));
        }
        for s in &mut self.shards {
            s.persist_fence();
        }
        for (idx, lines, addrs) in flushed {
            self.shards[idx].persist_claim(&addrs, lines);
        }
        Ok(())
    }

    /// Simulates a power failure on every shard; reports the merged dump.
    ///
    /// # Errors
    ///
    /// Propagates NAND errors from the dumps.
    pub fn power_fail(&mut self, adr_works: bool) -> Result<PowerFailReport, CoreError> {
        let mut report = PowerFailReport {
            adr_worked: adr_works,
            ..PowerFailReport::default()
        };
        for s in &mut self.shards {
            report.merge(&s.power_fail(adr_works)?);
        }
        Ok(report)
    }

    /// Rebuilds every shard after a power failure, keeping the persistent
    /// Z-NAND contents and the interleave/scheduler configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none expected).
    pub fn into_recovered(self) -> Result<MultiChannelSystem, CoreError> {
        let map = self.map;
        let sched =
            RequestScheduler::new(self.sched.shards(), self.sched.depth(), self.sched.policy());
        let shards = self
            .shards
            .into_iter()
            .map(ChannelShard::into_recovered)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiChannelSystem {
            shards,
            map,
            sched,
            failover: self.failover,
        })
    }

    /// Crash-sweep variant of [`MultiChannelSystem::into_recovered`]:
    /// every shard reboots through the persistent-state snapshot APIs
    /// ([`ChannelShard::into_crash_recovered`]), so only what the Z-NAND
    /// media and the FTL maps hold survives the cut.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none expected).
    pub fn into_crash_recovered(self) -> Result<MultiChannelSystem, CoreError> {
        let map = self.map;
        let sched =
            RequestScheduler::new(self.sched.shards(), self.sched.depth(), self.sched.policy());
        let shards = self
            .shards
            .into_iter()
            .map(ChannelShard::into_crash_recovered)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiChannelSystem {
            shards,
            map,
            sched,
            failover: self.failover,
        })
    }

    /// Starts a crash-boundary rehearsal on every shard (see
    /// [`ChannelShard::crash_enumerate_begin`]).
    pub fn crash_enumerate_begin(&mut self) {
        for s in &mut self.shards {
            s.crash_enumerate_begin();
        }
    }

    /// Ends the rehearsal; element `i` holds shard `i`'s boundaries.
    pub fn crash_enumerate_take(&mut self) -> Vec<Vec<CrashPoint>> {
        self.shards
            .iter_mut()
            .map(ChannelShard::crash_enumerate_take)
            .collect()
    }

    /// Arms a power cut at boundary `target` of shard `shard`; all other
    /// shards run unarmed (their boundary counters still restart so a
    /// later rehearsal is clean).
    pub fn crash_arm(&mut self, shard: usize, target: u64) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            if i == shard {
                s.crash_arm(target);
            } else {
                s.crash_disarm();
            }
        }
    }

    /// Disarms every shard's crash hook.
    pub fn crash_disarm(&mut self) {
        for s in &mut self.shards {
            s.crash_disarm();
        }
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<(), CoreError> {
        let capacity = self.capacity_bytes();
        if offset + len > capacity {
            return Err(CoreError::OutOfRange { offset, capacity });
        }
        Ok(())
    }

    /// Catches a lagging shard up to the issue instant: the issuing
    /// CPU's timeline is global.
    fn catch_up(&mut self, idx: usize, t0: SimTime) {
        let shard = &mut self.shards[idx];
        if shard.now() < t0 {
            let gap = t0.since(shard.now());
            shard.advance(gap);
        }
    }

    /// The retry-after hint for every shed site, proportional to the
    /// shard's actual queue pressure: the policy's base delay when the
    /// queue is empty, twice it when the queue is full. One helper for
    /// all three shed paths (closed gate, full queue, exhausted repair
    /// budget), so the hint semantics cannot drift between them.
    fn shed_retry_after(&self, idx: usize) -> SimDuration {
        let base = self.failover.retry_after;
        let pressure = self.sched.pending(idx) as f64 / self.sched.depth().max(1) as f64;
        base + base.mul_f64(pressure.min(1.0))
    }

    /// Routes one segment through the scheduler for accounting. The queue
    /// in front of an idle shard is empty, so the request passes straight
    /// through — the scheduler still accounts it for the conservation
    /// check. Returns whether the request was queued (and must be marked
    /// complete after service).
    ///
    /// # Errors
    ///
    /// `Rebuilding` when the shard's admission gate is closed mid-repair,
    /// `Overloaded` when the queue is full and the policy sheds load.
    /// Both hints scale with queue pressure ([`Self::shed_retry_after`]).
    fn enqueue_accounted(
        &mut self,
        idx: usize,
        kind: ReqKind,
        seg: &Segment,
        t0: SimTime,
    ) -> Result<bool, CoreError> {
        let req = ShardRequest {
            seq: 0,
            tenant: TenantId::HOST,
            thread: 0,
            kind,
            local_offset: seg.local_offset,
            len: seg.len,
            not_before: t0,
            // The blocking path serves the payload in place; the queue
            // entry carries only the accounting fields.
            data: Vec::new(),
        };
        if !self.sched.is_admitted(idx) {
            // The gate only closes while a repair is in flight.
            let _ = self.sched.enqueue(idx, req);
            return Err(CoreError::Rebuilding {
                shard: idx as u32,
                retry_after: self.shed_retry_after(idx),
            });
        }
        match self.sched.enqueue(idx, req) {
            Ok(()) => {
                let _ = self.sched.pop(idx);
                Ok(true)
            }
            Err(_) if self.failover.shed_on_overload => Err(CoreError::Overloaded {
                shard: idx as u32,
                retry_after: self.shed_retry_after(idx),
                queued: self.sched.pending(idx),
                queue_limit: self.sched.depth(),
            }),
            // A bounced request (full queue) is served directly anyway —
            // the blocking path cannot defer.
            Err(_) => Ok(false),
        }
    }

    /// Serves one shard operation under the failover policy: a degraded
    /// shard is repaired online (up to the attempt budget) and the
    /// operation retried; once the budget is spent the caller gets a
    /// typed `Rebuilding` hint instead of the raw degraded error. With
    /// auto-repair off this is a plain pass-through.
    fn serve_failover<T>(
        &mut self,
        idx: usize,
        mut op: impl FnMut(&mut ChannelShard) -> Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        let mut repairs = 0;
        loop {
            match op(&mut self.shards[idx]) {
                Err(CoreError::DegradedShard { .. })
                    if self.failover.auto_repair && repairs < self.failover.max_repair_attempts =>
                {
                    repairs += 1;
                    match self.repair_shard(idx) {
                        Ok(_) => continue,
                        // A power cut aborts everything; other repair
                        // failures burn an attempt and retry.
                        Err(CoreError::PowerInterrupted) => {
                            return Err(CoreError::PowerInterrupted)
                        }
                        Err(_) => continue,
                    }
                }
                Err(CoreError::DegradedShard { shard, .. }) if self.failover.auto_repair => {
                    let retry_after = self.shed_retry_after(shard as usize);
                    return Err(CoreError::Rebuilding { shard, retry_after });
                }
                other => return other,
            }
        }
    }

    /// Routes one read segment: catch-up, scheduler accounting, then the
    /// blocking shard call under the failover policy.
    fn route_read(
        &mut self,
        seg: &Segment,
        t0: SimTime,
        buf: &mut [u8],
    ) -> Result<SimTime, CoreError> {
        let idx = seg.shard as usize;
        self.catch_up(idx, t0);
        let queued = self.enqueue_accounted(idx, ReqKind::Read, seg, t0)?;
        let local = seg.local_offset;
        self.serve_failover(idx, |shard| shard.read_at(local, buf))?;
        if queued {
            self.sched.complete(idx);
        }
        Ok(self.shards[idx].now())
    }

    /// Routes one write segment; see [`Self::route_read`].
    fn route_write(
        &mut self,
        seg: &Segment,
        t0: SimTime,
        data: &[u8],
    ) -> Result<SimTime, CoreError> {
        let idx = seg.shard as usize;
        self.catch_up(idx, t0);
        let queued = self.enqueue_accounted(idx, ReqKind::Write, seg, t0)?;
        let local = seg.local_offset;
        self.serve_failover(idx, |shard| shard.write_at(local, data))?;
        if queued {
            self.sched.complete(idx);
        }
        Ok(self.shards[idx].now())
    }
}

impl BlockDevice for MultiChannelSystem {
    fn capacity_bytes(&self) -> u64 {
        let per = self.shards[0].capacity_bytes();
        if self.map.channels() == 1 {
            per
        } else {
            // Whole stripes only, so every in-range global address maps
            // inside every shard's local capacity.
            let g = self.map.granularity();
            (per / g) * g * u64::from(self.map.channels())
        }
    }

    fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(BlockDevice::now)
            .max()
            // INVARIANT: `InterleaveMap::new` rejects zero channels, so a
            // constructed system always has at least one shard.
            .unwrap_or_default()
    }

    fn advance(&mut self, d: SimDuration) {
        for s in &mut self.shards {
            s.advance(d);
        }
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration, CoreError> {
        let len = buf.len() as u64;
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.check_range(offset, len)?;
        let t0 = self.now();
        let mut done = t0;
        for seg in self.map.split_range(offset, len) {
            let slice = &mut buf[seg.pos..seg.pos + seg.len as usize];
            let end = self.route_read(&seg, t0, slice)?;
            done = done.max(end);
        }
        Ok(done.since(t0))
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration, CoreError> {
        let len = data.len() as u64;
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.check_range(offset, len)?;
        let t0 = self.now();
        let mut done = t0;
        for seg in self.map.split_range(offset, len) {
            let slice = &data[seg.pos..seg.pos + seg.len as usize];
            let end = self.route_write(&seg, t0, slice)?;
            done = done.max(end);
        }
        Ok(done.since(t0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_sim::DeterministicRng;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_BYTES as usize]
    }

    #[test]
    fn one_channel_front_is_bit_identical_to_monolith() {
        let cfg = NvdimmCConfig::small_for_tests();
        let mut mono = crate::shard::System::new(cfg.clone()).unwrap();
        let mut front = MultiChannelSystem::new(MultiChannelConfig::single(cfg)).unwrap();
        let mut rng = DeterministicRng::new(11);
        let span = 48 * PAGE_BYTES;
        for _ in 0..120 {
            let off = rng.gen_range(0..span - PAGE_BYTES);
            if rng.gen_bool(0.4) {
                let fill = (rng.gen_u64() & 0xFF) as u8;
                let a = mono.write_at(off, &page(fill)).unwrap();
                let b = front.write_at(off, &page(fill)).unwrap();
                assert_eq!(a, b, "write latency diverged at {off}");
            } else {
                let mut x = page(0);
                let mut y = page(0);
                let a = mono.read_at(off, &mut x).unwrap();
                let b = front.read_at(off, &mut y).unwrap();
                assert_eq!(a, b, "read latency diverged at {off}");
                assert_eq!(x, y, "data diverged at {off}");
            }
        }
        assert_eq!(mono.now(), front.now(), "clocks diverged");
        let (ms, fs) = (mono.stats(), front.stats());
        assert_eq!(
            (ms.reads, ms.writes, ms.faults, ms.cachefills, ms.writebacks),
            (fs.reads, fs.writes, fs.faults, fs.cachefills, fs.writebacks)
        );
        let (mb, fb) = (mono.bus_stats(), front.bus_stats());
        assert_eq!(
            (mb.host_commands, mb.nvmc_commands, mb.refreshes),
            (fb.host_commands, fb.nvmc_commands, fb.refreshes)
        );
    }

    #[test]
    fn multi_channel_round_trip_spans_shards() {
        let cfg = MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), 4);
        let mut sys = MultiChannelSystem::new(cfg).unwrap();
        let data: Vec<u8> = (0..8 * PAGE_BYTES).map(|i| (i % 253) as u8).collect();
        sys.write_at(1000, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        sys.read_at(1000, &mut out).unwrap();
        assert_eq!(out, data);
        // The write really spread over all four shards.
        for (i, s) in sys.shards().iter().enumerate() {
            assert!(s.stats().writes > 0, "shard {i} untouched");
        }
        // Conservation: everything enqueued has completed.
        for (i, (enq, comp)) in sys.scheduler().conservation().iter().enumerate() {
            assert_eq!(enq, comp, "shard {i} leaked requests");
            assert!(*enq > 0, "shard {i} never scheduled");
        }
    }

    #[test]
    fn capacity_scales_with_channels() {
        let one =
            MultiChannelSystem::new(MultiChannelConfig::single(NvdimmCConfig::small_for_tests()))
                .unwrap();
        let four =
            MultiChannelSystem::new(MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), 4))
                .unwrap();
        assert_eq!(four.capacity_bytes(), 4 * one.capacity_bytes());
        let cap = four.capacity_bytes();
        let mut sys = four;
        assert!(matches!(
            sys.read_at(cap - 10, &mut [0u8; 64]),
            Err(CoreError::OutOfRange { .. })
        ));
    }

    #[test]
    fn persist_and_power_fail_span_shards() {
        let cfg = MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), 2);
        let mut sys = MultiChannelSystem::new(cfg).unwrap();
        let data: Vec<u8> = (0..4 * PAGE_BYTES).map(|i| (i % 251) as u8).collect();
        sys.write_at(0, &data).unwrap();
        sys.persist(0, data.len() as u64).unwrap();
        let report = sys.power_fail(false).unwrap();
        assert!(report.slots_flushed >= 4, "both shards dumped");
        assert!(!report.adr_worked);
        let mut back = sys.into_recovered().unwrap();
        let mut out = vec![0u8; data.len()];
        back.read_at(0, &mut out).unwrap();
        assert_eq!(out, data, "persisted data survived across shards");
    }

    #[test]
    fn shard_rng_streams_are_decorrelated() {
        let cfg = MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), 2);
        let sys = MultiChannelSystem::new(cfg).unwrap();
        let seeds: Vec<u64> = sys.shards().iter().map(|s| s.config().seed).collect();
        assert_ne!(seeds[0], seeds[1]);
        // Shard 0 keeps the base seed — the bit-identity guarantee.
        assert_eq!(seeds[0], NvdimmCConfig::small_for_tests().seed);
    }
}
