//! The comparison device: Linux's emulated persistent memory
//! (`/dev/pmem0`, paper §VI).
//!
//! A DRAM-backed region exposed through the same XFS-DAX mount as
//! NVDIMM-C. It "actually does not guarantee the persistency property" —
//! it is a ramdisk — so it serves as the performance upper bound in every
//! figure. Table I gives it the same stretched tRFC (1250 ns) as the
//! NVDIMM-C channel.

use crate::config::PAGE_BYTES;
use crate::error::CoreError;
use crate::perf::PerfParams;
use crate::shard::{BlockDevice, QueuedDevice};
use nvdimmc_ddr::{DramDevice, Imc, ImcConfig, SharedBus, TimingParams};
use nvdimmc_sim::{Histogram, SimDuration, SimTime};

/// Statistics for the baseline device.
#[derive(Debug, Clone, Default)]
pub struct BaselineStats {
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Read latency distribution.
    pub read_latency: Histogram,
    /// Write latency distribution.
    pub write_latency: Histogram,
}

/// The emulated-NVDIMM baseline.
///
/// # Example
///
/// ```
/// use nvdimmc_core::{BlockDevice, EmulatedPmem, PerfParams};
/// use nvdimmc_ddr::{SpeedBin, TimingParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
/// let mut pmem = EmulatedPmem::new(64 << 20, timing, PerfParams::poc())?;
/// pmem.write_at(4096, &[1u8; 4096])?;
/// let mut buf = [0u8; 4096];
/// pmem.read_at(4096, &mut buf)?;
/// assert_eq!(buf[0], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EmulatedPmem {
    bus: SharedBus,
    imc: Imc,
    perf: PerfParams,
    capacity: u64,
    clock: SimTime,
    stats: BaselineStats,
}

impl EmulatedPmem {
    /// Creates a pmem region of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if `capacity` is zero.
    pub fn new(capacity: u64, timing: TimingParams, perf: PerfParams) -> Result<Self, CoreError> {
        if capacity == 0 {
            return Err(CoreError::Config("pmem capacity must be positive".into()));
        }
        let stripe = 8 * 1024 * 16;
        let dram = capacity.div_ceil(stripe) * stripe;
        let device = DramDevice::new(timing, dram);
        Ok(EmulatedPmem {
            bus: SharedBus::new(device),
            imc: Imc::new(ImcConfig::from_timing(&timing)),
            perf,
            capacity,
            clock: SimTime::ZERO,
            stats: BaselineStats::default(),
        })
    }

    /// Statistics.
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<(), CoreError> {
        if offset + len > self.capacity {
            return Err(CoreError::OutOfRange {
                offset,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    fn sw_cost(&self, len: u64, write: bool) -> SimDuration {
        let mut c = self.perf.fio_base_op;
        if write {
            c += self.perf.fio_write_extra;
        }
        // Sub-page ops skip nothing on the baseline: the block-layer-ish
        // fixed cost applies regardless of size.
        let _ = len;
        c
    }
}

impl BlockDevice for EmulatedPmem {
    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn now(&self) -> SimTime {
        self.clock
    }

    fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration, CoreError> {
        let len = buf.len() as u64;
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.check_range(offset, len)?;
        let t0 = self.clock;
        self.clock += self.sw_cost(len, false);
        let start = self.clock;
        let pace = self.perf.copy_time(64);
        let end = self
            .imc
            .read_bytes_paced(&mut self.bus, start, offset, buf, pace)?;
        self.clock = end.max(start + self.perf.copy_time(len));
        let lat = self.clock.since(t0);
        self.stats.reads += 1;
        self.stats.read_latency.record(lat);
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration, CoreError> {
        let len = data.len() as u64;
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.check_range(offset, len)?;
        let t0 = self.clock;
        self.clock += self.sw_cost(len, true);
        let start = self.clock;
        let pace = self.perf.copy_time(64);
        let end = self
            .imc
            .write_bytes_paced(&mut self.bus, start, offset, data, pace)?;
        self.clock = end.max(start + self.perf.copy_time(len));
        let lat = self.clock.since(t0);
        self.stats.writes += 1;
        self.stats.write_latency.record(lat);
        Ok(lat)
    }
}

impl QueuedDevice for EmulatedPmem {
    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn pre_cost(&self, len: u64, write: bool) -> SimDuration {
        self.sw_cost(len, write)
    }

    fn copy_cost(&self, len: u64) -> SimDuration {
        self.perf.copy_time(len)
    }

    fn serve_read(
        &mut self,
        not_before: SimTime,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<SimTime, CoreError> {
        let len = buf.len() as u64;
        if len == 0 {
            return Ok(self.clock.max(not_before));
        }
        self.check_range(offset, len)?;
        if self.clock <= not_before {
            // Idle at arrival: lock-step with the issuing thread's copy,
            // exactly like the blocking path.
            self.clock = not_before;
            let t0 = self.clock;
            let pace = self.perf.copy_time(64);
            let end = self
                .imc
                .read_bytes_paced(&mut self.bus, t0, offset, buf, pace)?;
            self.clock = end.max(t0 + self.perf.copy_time(len));
            self.stats.reads += 1;
            self.stats.read_latency.record(self.clock.since(t0));
        } else {
            // Contended: the copy overlaps other requests' transfers; the
            // device holds only the raw (tCCD-pipelined) bus occupancy.
            let t0 = self.clock;
            let end = self.imc.read_bytes(&mut self.bus, t0, offset, buf)?;
            self.clock = end;
            self.stats.reads += 1;
            self.stats.read_latency.record(self.clock.since(t0));
        }
        Ok(self.clock)
    }

    fn serve_write(
        &mut self,
        not_before: SimTime,
        offset: u64,
        data: &[u8],
    ) -> Result<SimTime, CoreError> {
        let len = data.len() as u64;
        if len == 0 {
            return Ok(self.clock.max(not_before));
        }
        self.check_range(offset, len)?;
        if self.clock <= not_before {
            self.clock = not_before;
            let t0 = self.clock;
            let pace = self.perf.copy_time(64);
            let end = self
                .imc
                .write_bytes_paced(&mut self.bus, t0, offset, data, pace)?;
            self.clock = end.max(t0 + self.perf.copy_time(len));
            self.stats.writes += 1;
            self.stats.write_latency.record(self.clock.since(t0));
        } else {
            let t0 = self.clock;
            let end = self.imc.write_bytes(&mut self.bus, t0, offset, data)?;
            self.clock = end;
            self.stats.writes += 1;
            self.stats.write_latency.record(self.clock.since(t0));
        }
        Ok(self.clock)
    }
}

// `PAGE_BYTES` is re-used by callers sizing baseline experiments.
const _: () = assert!(PAGE_BYTES == 4096);
