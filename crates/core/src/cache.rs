//! The DRAM cache slot manager (paper §IV-B).
//!
//! A fully associative cache of 4 KB slots over the reserved DRAM region.
//! The PoC's replacement policy is **LRC** — least-recently *cached*: "the
//! nvdc driver stores the pointer to the associated PTE in a FIFO manner
//! ... whenever eviction is needed, the first entry of the FIFO queue is
//! selected as a victim". LRU and CLOCK are provided for the paper's
//! §VII-B5 policy study.

use crate::config::EvictionPolicyKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Evictions whose victim was dirty (required writeback).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another cache partition's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.dirty_evictions += other.dirty_evictions;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotMeta {
    nand_page: Option<u64>,
    dirty: bool,
    /// CLOCK reference bit.
    referenced: bool,
    /// LRU timestamp.
    last_touch: u64,
    /// Tick at which the slot was last filled (validates LRC queue
    /// entries lazily).
    fill_tick: u64,
    /// Tenant priority class (0 = background/default). Victim selection
    /// is restricted to the lowest class present, so a low-priority fill
    /// can never evict a higher-priority tenant's slot while any slot of
    /// its own class remains.
    prio: u8,
}

/// The slot manager: NAND page → slot mapping plus eviction policy state.
///
/// Pure bookkeeping — data movement and timing live in the driver/FPGA.
///
/// # Example
///
/// ```
/// use nvdimmc_core::cache::DramCache;
/// use nvdimmc_core::config::EvictionPolicyKind;
///
/// let mut cache = DramCache::new(2, EvictionPolicyKind::Lrc);
/// assert_eq!(cache.lookup(10), None);
/// let slot = cache.take_free_slot().unwrap();
/// cache.fill(slot, 10);
/// assert_eq!(cache.lookup(10), Some(slot));
/// ```
#[derive(Debug)]
pub struct DramCache {
    slots: Vec<SlotMeta>,
    map: HashMap<u64, u64>,
    free: VecDeque<u64>,
    policy: EvictionPolicyKind,
    /// LRC: FIFO of (slot, fill_tick); stale entries are skipped lazily.
    lrc_queue: VecDeque<(u64, u64)>,
    /// LRU: ordered (last_touch, slot) set.
    lru_index: BTreeSet<(u64, u64)>,
    /// CLOCK hand position.
    clock_hand: u64,
    tick: u64,
    stats: CacheStats,
}

impl DramCache {
    /// Creates an empty cache of `slot_count` slots.
    ///
    /// # Panics
    ///
    /// Panics if `slot_count` is zero.
    pub fn new(slot_count: u64, policy: EvictionPolicyKind) -> Self {
        assert!(slot_count > 0, "cache needs at least one slot");
        DramCache {
            slots: vec![
                SlotMeta {
                    nand_page: None,
                    dirty: false,
                    referenced: false,
                    last_touch: 0,
                    fill_tick: 0,
                    prio: 0,
                };
                slot_count as usize
            ],
            map: HashMap::new(),
            free: (0..slot_count).collect(),
            policy,
            lrc_queue: VecDeque::new(),
            lru_index: BTreeSet::new(),
            clock_hand: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Total slots.
    pub fn slot_count(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> u64 {
        self.free.len() as u64
    }

    /// Occupied slots.
    pub fn resident(&self) -> u64 {
        self.map.len() as u64
    }

    /// The policy in use.
    pub fn policy(&self) -> EvictionPolicyKind {
        self.policy
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a NAND page; touches policy state on hit.
    pub fn lookup(&mut self, nand_page: u64) -> Option<u64> {
        match self.map.get(&nand_page).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(slot)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without counting a hit/miss or touching recency.
    pub fn peek(&self, nand_page: u64) -> Option<u64> {
        self.map.get(&nand_page).copied()
    }

    fn touch(&mut self, slot: u64) {
        self.tick += 1;
        let meta = &mut self.slots[slot as usize];
        meta.referenced = true;
        match self.policy {
            EvictionPolicyKind::Lru => {
                self.lru_index.remove(&(meta.last_touch, slot));
                meta.last_touch = self.tick;
                self.lru_index.insert((meta.last_touch, slot));
            }
            EvictionPolicyKind::Lrc | EvictionPolicyKind::Clock => {
                meta.last_touch = self.tick;
            }
        }
    }

    /// Marks a resident slot dirty (CPU stored to it).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not resident.
    pub fn mark_dirty(&mut self, slot: u64) {
        let meta = &mut self.slots[slot as usize];
        assert!(meta.nand_page.is_some(), "dirtying a free slot");
        meta.dirty = true;
    }

    /// Marks a resident slot clean again (its contents were written back
    /// to NAND by the rebuild path, so DRAM and media agree).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not resident.
    pub fn mark_clean(&mut self, slot: u64) {
        let meta = &mut self.slots[slot as usize];
        assert!(meta.nand_page.is_some(), "cleaning a free slot");
        meta.dirty = false;
    }

    /// Whether the slot is dirty.
    pub fn is_dirty(&self, slot: u64) -> bool {
        self.slots[slot as usize].dirty
    }

    /// The NAND page resident in `slot`, if any.
    pub fn page_of(&self, slot: u64) -> Option<u64> {
        self.slots[slot as usize].nand_page
    }

    /// Takes a free slot, if any.
    pub fn take_free_slot(&mut self) -> Option<u64> {
        self.free.pop_front()
    }

    /// The lowest priority class among resident slots — the only class
    /// victims may come from.
    fn prio_floor(&self) -> u8 {
        self.slots
            .iter()
            .filter(|m| m.nand_page.is_some())
            .map(|m| m.prio)
            .min()
            .unwrap_or(0)
    }

    /// Chooses the eviction victim per the configured policy without
    /// removing it. Returns `(slot, page, dirty)`.
    ///
    /// Victim selection is *priority-aware*: only slots in the lowest
    /// priority class currently resident are candidates, so a background
    /// tenant's fill can never displace a foreground tenant's hot slot
    /// while any background slot remains. When every slot carries the
    /// default priority 0 (all pre-tenancy callers), the floor is 0 and
    /// the selection is exactly the classic policy.
    ///
    /// Returns `None` when nothing is resident.
    pub fn pick_victim(&mut self) -> Option<(u64, u64, bool)> {
        if self.map.is_empty() {
            return None;
        }
        let floor = self.prio_floor();
        let slot = match self.policy {
            EvictionPolicyKind::Lrc => {
                // Drop stale front entries eagerly (cheap, keeps the
                // queue bounded), then take the first *live* entry in the
                // floor class — higher-priority entries are passed over
                // in place, preserving their FIFO position.
                loop {
                    let &(s, t) = self.lrc_queue.front()?;
                    let meta = &self.slots[s as usize];
                    if meta.nand_page.is_some() && meta.fill_tick == t {
                        break;
                    }
                    self.lrc_queue.pop_front();
                }
                self.lrc_queue
                    .iter()
                    .find(|&&(s, t)| {
                        let meta = &self.slots[s as usize];
                        meta.nand_page.is_some() && meta.fill_tick == t && meta.prio == floor
                    })
                    .map(|&(s, _)| s)?
            }
            EvictionPolicyKind::Lru => {
                self.lru_index
                    .iter()
                    .find(|&&(_, s)| self.slots[s as usize].prio == floor)?
                    .1
            }
            EvictionPolicyKind::Clock => {
                let n = self.slots.len() as u64;
                loop {
                    let s = self.clock_hand % n;
                    self.clock_hand = (self.clock_hand + 1) % n;
                    let meta = &mut self.slots[s as usize];
                    if meta.nand_page.is_none() || meta.prio != floor {
                        // Protected slots keep their reference bit — the
                        // hand passes without aging them.
                        continue;
                    }
                    if meta.referenced {
                        meta.referenced = false;
                    } else {
                        break s;
                    }
                }
            }
        };
        let meta = self.slots[slot as usize];
        Some((slot, meta.nand_page?, meta.dirty))
    }

    /// Evicts a resident slot. Returns the page it held. The slot is NOT
    /// returned to the free list — the caller either refills it (the
    /// fault path) or hands it back with [`DramCache::release`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is not resident.
    #[allow(clippy::expect_used)] // documented contract: resident slot required
    pub fn evict(&mut self, slot: u64) -> u64 {
        let meta = &mut self.slots[slot as usize];
        let page = meta.nand_page.take().expect("evicting a free slot");
        let was_dirty = meta.dirty;
        let last = meta.last_touch;
        meta.dirty = false;
        meta.referenced = false;
        meta.prio = 0;
        self.map.remove(&page);
        // The LRC queue entry goes stale and is skipped lazily.
        self.lru_index.remove(&(last, slot));
        self.stats.evictions += 1;
        if was_dirty {
            self.stats.dirty_evictions += 1;
        }
        page
    }

    /// Returns an evicted (or never-used) slot to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the slot is resident.
    pub fn release(&mut self, slot: u64) {
        assert!(
            self.slots[slot as usize].nand_page.is_none(),
            "releasing a resident slot"
        );
        self.free.push_back(slot);
    }

    /// Fills a free slot with `nand_page`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or the page is already resident.
    pub fn fill(&mut self, slot: u64, nand_page: u64) {
        assert!(
            self.slots[slot as usize].nand_page.is_none(),
            "filling an occupied slot"
        );
        assert!(
            !self.map.contains_key(&nand_page),
            "page {nand_page} already resident"
        );
        self.tick += 1;
        let meta = &mut self.slots[slot as usize];
        meta.nand_page = Some(nand_page);
        meta.dirty = false;
        meta.referenced = true;
        meta.last_touch = self.tick;
        meta.fill_tick = self.tick;
        meta.prio = 0;
        self.map.insert(nand_page, slot);
        self.lrc_queue.push_back((slot, self.tick));
        if self.policy == EvictionPolicyKind::Lru {
            self.lru_index.insert((self.tick, slot));
        }
    }

    /// Sets a resident slot's priority class.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not resident.
    pub fn set_priority(&mut self, slot: u64, prio: u8) {
        let meta = &mut self.slots[slot as usize];
        assert!(meta.nand_page.is_some(), "prioritising a free slot");
        meta.prio = prio;
    }

    /// Raises a resident slot's priority class to at least `prio`
    /// (never lowers it) — the hit path calls this so a slot shared by
    /// tenants of different classes keeps the strongest protection.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not resident.
    pub fn promote(&mut self, slot: u64, prio: u8) {
        let meta = &mut self.slots[slot as usize];
        assert!(meta.nand_page.is_some(), "promoting a free slot");
        meta.prio = meta.prio.max(prio);
    }

    /// A resident slot's priority class (0 for free slots).
    pub fn priority_of(&self, slot: u64) -> u8 {
        self.slots[slot as usize].prio
    }

    /// Iterates over resident `(slot, page, dirty)` entries — the
    /// power-fail flush walks this via the metadata area.
    pub fn resident_entries(&self) -> impl Iterator<Item = (u64, u64, bool)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.nand_page.map(|p| (i as u64, p, m.dirty)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_next(c: &mut DramCache, page: u64) -> u64 {
        let slot = c.take_free_slot().expect("free slot");
        c.fill(slot, page);
        slot
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = DramCache::new(4, EvictionPolicyKind::Lrc);
        assert_eq!(c.lookup(1), None);
        let s = fill_next(&mut c, 1);
        assert_eq!(c.lookup(1), Some(s));
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lrc_evicts_fill_order_regardless_of_use() {
        let mut c = DramCache::new(3, EvictionPolicyKind::Lrc);
        let s0 = fill_next(&mut c, 10);
        fill_next(&mut c, 11);
        fill_next(&mut c, 12);
        // Heavy re-use of the oldest page must NOT save it under LRC.
        for _ in 0..10 {
            c.lookup(10);
        }
        let (victim, page, _) = c.pick_victim().unwrap();
        assert_eq!((victim, page), (s0, 10), "LRC ignores recency of use");
    }

    #[test]
    fn lru_spares_recently_used() {
        let mut c = DramCache::new(3, EvictionPolicyKind::Lru);
        fill_next(&mut c, 10);
        let s1 = fill_next(&mut c, 11);
        fill_next(&mut c, 12);
        c.lookup(10); // refresh page 10
        let (victim, page, _) = c.pick_victim().unwrap();
        assert_eq!((victim, page), (s1, 11), "LRU evicts the stale page");
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut c = DramCache::new(3, EvictionPolicyKind::Clock);
        fill_next(&mut c, 10);
        fill_next(&mut c, 11);
        fill_next(&mut c, 12);
        // All referenced: first sweep clears bits, victim is slot 0 on the
        // second pass.
        let (v1, _, _) = c.pick_victim().unwrap();
        assert_eq!(v1, 0);
        // Touch page 10 (slot 0): now slot 1 is the victim.
        c.lookup(10);
        let (v2, _, _) = c.pick_victim().unwrap();
        assert_eq!(v2, 1, "referenced slot got its second chance");
    }

    #[test]
    fn evict_frees_and_forgets() {
        let mut c = DramCache::new(2, EvictionPolicyKind::Lrc);
        let s = fill_next(&mut c, 5);
        c.mark_dirty(s);
        let page = c.evict(s);
        assert_eq!(page, 5);
        assert_eq!(c.peek(5), None);
        assert_eq!(c.free_slots(), 1, "evicted slot reserved for refill");
        c.release(s);
        assert_eq!(c.free_slots(), 2);
        assert!(!c.is_dirty(s), "dirty bit cleared on eviction");
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn refill_after_evict_works() {
        let mut c = DramCache::new(1, EvictionPolicyKind::Lru);
        let s = fill_next(&mut c, 1);
        c.evict(s);
        // The fault path refills the evicted slot directly.
        c.fill(s, 2);
        assert_eq!(c.lookup(2), Some(s));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_fill_same_page_panics() {
        let mut c = DramCache::new(2, EvictionPolicyKind::Lrc);
        fill_next(&mut c, 1);
        fill_next(&mut c, 1);
    }

    #[test]
    #[should_panic(expected = "occupied slot")]
    fn fill_occupied_slot_panics() {
        let mut c = DramCache::new(2, EvictionPolicyKind::Lrc);
        let s = fill_next(&mut c, 1);
        c.fill(s, 2);
    }

    #[test]
    fn resident_entries_reports_dirty() {
        let mut c = DramCache::new(4, EvictionPolicyKind::Lrc);
        let a = fill_next(&mut c, 7);
        fill_next(&mut c, 8);
        c.mark_dirty(a);
        let entries: Vec<_> = c.resident_entries().collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&(a, 7, true)));
    }

    #[test]
    fn priority_floor_protects_foreground_slots() {
        for policy in [
            EvictionPolicyKind::Lrc,
            EvictionPolicyKind::Lru,
            EvictionPolicyKind::Clock,
        ] {
            let mut c = DramCache::new(3, policy);
            let fg = fill_next(&mut c, 10); // oldest fill, foreground
            c.set_priority(fg, 1);
            let bg1 = fill_next(&mut c, 11);
            let bg2 = fill_next(&mut c, 12);
            // Despite being oldest/least-recent, the foreground slot is
            // never the victim while any background slot remains.
            let (v1, _, _) = c.pick_victim().unwrap();
            assert!(v1 == bg1 || v1 == bg2, "{policy:?} evicted foreground");
            c.evict(v1);
            let (v2, _, _) = c.pick_victim().unwrap();
            assert!(v2 == bg1 || v2 == bg2, "{policy:?} evicted foreground");
            assert_ne!(v1, v2);
            c.evict(v2);
            // Only the foreground slot remains: the floor drops to 1 and
            // it becomes evictable — no deadlock.
            let (v3, page, _) = c.pick_victim().unwrap();
            assert_eq!((v3, page), (fg, 10));
        }
    }

    #[test]
    fn promote_raises_but_never_lowers() {
        let mut c = DramCache::new(2, EvictionPolicyKind::Lrc);
        let s = fill_next(&mut c, 1);
        assert_eq!(c.priority_of(s), 0);
        c.promote(s, 1);
        c.promote(s, 0); // no-op: promote never demotes
        assert_eq!(c.priority_of(s), 1);
        // Eviction resets the class; a refill starts at 0 again.
        c.evict(s);
        c.fill(s, 2);
        assert_eq!(c.priority_of(s), 0);
    }

    #[test]
    fn uniform_priority_matches_classic_policies() {
        // With every slot at the default class the floor logic must
        // reproduce the classic victims (the bit-identity guarantee for
        // pre-tenancy callers). Re-run the LRC scenario explicitly.
        let mut c = DramCache::new(3, EvictionPolicyKind::Lrc);
        let s0 = fill_next(&mut c, 10);
        fill_next(&mut c, 11);
        fill_next(&mut c, 12);
        assert_eq!(c.pick_victim().unwrap().0, s0);
    }

    #[test]
    fn lru_full_workout_matches_reference() {
        // Cross-check LRU against a simple reference model under a random
        // workload.
        use nvdimmc_sim::DeterministicRng;
        let mut rng = DeterministicRng::new(11);
        let mut c = DramCache::new(8, EvictionPolicyKind::Lru);
        let mut reference: Vec<u64> = Vec::new(); // most recent at back
        for _ in 0..2000 {
            let page = rng.gen_range(0..24);
            if c.lookup(page).is_some() {
                reference.retain(|&p| p != page);
                reference.push(page);
            } else {
                let slot = match c.take_free_slot() {
                    Some(s) => s,
                    None => {
                        let (victim, vpage, _) = c.pick_victim().unwrap();
                        assert_eq!(vpage, reference[0], "LRU victim diverged from reference");
                        reference.remove(0);
                        c.evict(victim);
                        victim
                    }
                };
                c.fill(slot, page);
                reference.push(page);
            }
        }
    }
}
