//! NAND array geometry and physical addressing.

use crate::error::NandError;
use serde::{Deserialize, Serialize};

/// Geometry of the Z-NAND array.
///
/// The paper's PoC carries two 64 GB Z-NAND packages on two channels. For
/// unit tests a much smaller geometry keeps memory bounded; the sparse page
/// store makes the full geometry usable too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandGeometry {
    /// Independent channels (the PoC has 2).
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Data bytes per page (4 KB — the paper's ECC granularity).
    pub page_bytes: u32,
}

impl NandGeometry {
    /// The paper's media: 2 channels × 64 GB Z-NAND.
    pub fn znand_128gb() -> Self {
        NandGeometry {
            channels: 2,
            dies_per_channel: 4,
            planes_per_die: 2,
            blocks_per_plane: 4096,
            pages_per_block: 512,
            page_bytes: 4096,
        }
    }

    /// A figure-scale geometry (512 MB raw): big enough that the DRAM
    /// cache (64 MB in figure runs) is a small fraction of the media, as
    /// in the paper (16 GB / 128 GB), while keeping runs fast.
    pub fn medium() -> Self {
        NandGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 128,
            pages_per_block: 128,
            page_bytes: 4096,
        }
    }

    /// A tiny geometry for fast tests (2 channels, 32 MB total).
    pub fn small_for_tests() -> Self {
        NandGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 2,
            blocks_per_plane: 32,
            pages_per_block: 64,
            page_bytes: 4096,
        }
    }

    /// Total blocks in the array.
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.dies_per_channel)
            * u64::from(self.planes_per_die)
            * u64::from(self.blocks_per_plane)
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * u64::from(self.pages_per_block)
    }

    /// Total raw capacity in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.total_pages() * u64::from(self.page_bytes)
    }

    /// Decomposes a flat block index into (channel, die, plane, block).
    ///
    /// Blocks are striped channel-first so consecutive blocks land on
    /// different channels (maximising parallelism).
    pub fn split_block(&self, flat: u64) -> (u32, u32, u32, u32) {
        let ch = (flat % u64::from(self.channels)) as u32;
        let rest = flat / u64::from(self.channels);
        let die = (rest % u64::from(self.dies_per_channel)) as u32;
        let rest = rest / u64::from(self.dies_per_channel);
        let plane = (rest % u64::from(self.planes_per_die)) as u32;
        let block = (rest / u64::from(self.planes_per_die)) as u32;
        (ch, die, plane, block)
    }

    /// Recomposes a flat block index.
    pub fn flat_block(&self, ch: u32, die: u32, plane: u32, block: u32) -> u64 {
        ((u64::from(block) * u64::from(self.planes_per_die) + u64::from(plane))
            * u64::from(self.dies_per_channel)
            + u64::from(die))
            * u64::from(self.channels)
            + u64::from(ch)
    }
}

/// A physical page address: flat block index + page within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysPage {
    /// Flat block index (see [`NandGeometry::split_block`]).
    pub block: u64,
    /// Page within the block.
    pub page: u32,
}

impl PhysPage {
    /// Creates a physical page address, validating against `geo`.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] for addresses beyond the
    /// geometry.
    pub fn new(geo: &NandGeometry, block: u64, page: u32) -> Result<Self, NandError> {
        let p = PhysPage { block, page };
        if block >= geo.total_blocks() || page >= geo.pages_per_block {
            return Err(NandError::AddressOutOfRange { page: p });
        }
        Ok(p)
    }

    /// The channel this page's block lives on.
    pub fn channel(&self, geo: &NandGeometry) -> u32 {
        geo.split_block(self.block).0
    }

    /// Flat page index across the whole array.
    pub fn flat_index(&self, geo: &NandGeometry) -> u64 {
        self.block * u64::from(geo.pages_per_block) + u64::from(self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_capacity() {
        let g = NandGeometry::znand_128gb();
        assert_eq!(g.raw_bytes(), 128 * (1u64 << 30));
    }

    #[test]
    fn small_geometry_capacity() {
        let g = NandGeometry::small_for_tests();
        assert_eq!(g.raw_bytes(), 32 * (1u64 << 20));
    }

    #[test]
    fn block_split_roundtrip() {
        let g = NandGeometry::znand_128gb();
        for flat in [0u64, 1, 2, 17, 1000, g.total_blocks() - 1] {
            let (c, d, p, b) = g.split_block(flat);
            assert_eq!(g.flat_block(c, d, p, b), flat);
        }
    }

    #[test]
    fn consecutive_blocks_alternate_channels() {
        let g = NandGeometry::small_for_tests();
        assert_ne!(g.split_block(0).0, g.split_block(1).0);
    }

    #[test]
    fn phys_page_validation() {
        let g = NandGeometry::small_for_tests();
        assert!(PhysPage::new(&g, 0, 0).is_ok());
        assert!(PhysPage::new(&g, g.total_blocks(), 0).is_err());
        assert!(PhysPage::new(&g, 0, g.pages_per_block).is_err());
    }

    #[test]
    fn flat_page_index_is_dense() {
        let g = NandGeometry::small_for_tests();
        let a = PhysPage::new(&g, 0, g.pages_per_block - 1).unwrap();
        let b = PhysPage::new(&g, 1, 0).unwrap();
        assert_eq!(a.flat_index(&g) + 1, b.flat_index(&g));
    }
}
