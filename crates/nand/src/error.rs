//! Error types for the NAND substrate.

use crate::geometry::PhysPage;
use std::error::Error;
use std::fmt;

/// Errors from the NAND media, FTL or controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// A physical address was outside the configured geometry.
    AddressOutOfRange {
        /// The offending address.
        page: PhysPage,
    },
    /// A logical page number exceeded the exported capacity.
    LogicalOutOfRange {
        /// The offending logical page number.
        lpn: u64,
        /// Number of exported logical pages.
        capacity_pages: u64,
    },
    /// Programming a page that is not in the erased state.
    ProgramWithoutErase {
        /// The offending address.
        page: PhysPage,
    },
    /// Programming pages of a block out of order (NAND requires sequential
    /// page programming within a block).
    NonSequentialProgram {
        /// The offending address.
        page: PhysPage,
        /// The next programmable page index in that block.
        expected_page: u32,
    },
    /// Reading a page that was never programmed.
    ReadUnwritten {
        /// The offending address.
        page: PhysPage,
    },
    /// The block is marked bad.
    BadBlock {
        /// The offending address.
        page: PhysPage,
    },
    /// ECC failed to correct the data (more errors than SEC-DED handles).
    Uncorrectable {
        /// The offending address.
        page: PhysPage,
    },
    /// The FTL ran out of writable blocks (device full beyond
    /// over-provisioning).
    OutOfSpace,
    /// A page buffer had the wrong length.
    BadPageSize {
        /// Bytes supplied.
        got: usize,
        /// Bytes required.
        want: usize,
    },
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::AddressOutOfRange { page } => {
                write!(f, "physical page {page:?} out of range")
            }
            NandError::LogicalOutOfRange {
                lpn,
                capacity_pages,
            } => write!(
                f,
                "logical page {lpn} out of range ({capacity_pages} pages)"
            ),
            NandError::ProgramWithoutErase { page } => {
                write!(f, "program to non-erased page {page:?}")
            }
            NandError::NonSequentialProgram {
                page,
                expected_page,
            } => write!(
                f,
                "non-sequential program to {page:?} (expected page {expected_page})"
            ),
            NandError::ReadUnwritten { page } => write!(f, "read of unwritten page {page:?}"),
            NandError::BadBlock { page } => write!(f, "access to bad block at {page:?}"),
            NandError::Uncorrectable { page } => {
                write!(f, "uncorrectable ECC error at {page:?}")
            }
            NandError::OutOfSpace => write!(f, "no writable blocks remain"),
            NandError::BadPageSize { got, want } => {
                write!(f, "page buffer of {got} bytes, expected {want}")
            }
        }
    }
}

impl Error for NandError {}
