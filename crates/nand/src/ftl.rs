//! The flash translation layer.
//!
//! Page-mapped FTL with the feature set the paper attributes to the NVMC
//! (§III-A): logical-to-physical mapping, greedy garbage collection,
//! wear-leveling (least-worn allocation plus a static-WL victim override),
//! and bad-block management. ECC is applied on the way in/out via
//! [`crate::PageCodec`].

use crate::ecc::PageCodec;
use crate::error::NandError;
use crate::geometry::{NandGeometry, PhysPage};
use crate::media::{MediaSnapshot, NandTiming, ZNandArray};
use nvdimmc_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// FTL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Array geometry.
    pub geometry: NandGeometry,
    /// Media timing.
    pub timing: NandTiming,
    /// Fraction of raw capacity exported as logical space. The paper's
    /// firmware exports 120 GB of the 128 GB media (§VI) — 93.75%.
    pub export_fraction: f64,
    /// Run GC when free blocks drop below this.
    pub gc_low_watermark: usize,
    /// If the erase-count spread exceeds this, GC picks the coldest block
    /// instead of the emptiest (static wear leveling).
    pub static_wl_threshold: u32,
    /// Read-retry ladder depth: how many times an uncorrectable page read
    /// is retried before the error surfaces. Z-NAND transient read noise
    /// makes re-reads worthwhile; a retry that succeeds also triggers a
    /// scrub-remap of the page onto fresh cells.
    pub read_retries: u32,
    /// RNG seed for the media's error-injection model.
    pub seed: u64,
}

impl FtlConfig {
    /// The paper's PoC: 128 GB raw, 120 GB exported.
    pub fn znand_poc() -> Self {
        FtlConfig {
            geometry: NandGeometry::znand_128gb(),
            timing: NandTiming::znand_poc(),
            export_fraction: 120.0 / 128.0,
            gc_low_watermark: 8,
            static_wl_threshold: 1000,
            read_retries: 3,
            seed: 42,
        }
    }

    /// Figure-scale media (512 MB raw, 480 MB exported).
    pub fn medium() -> Self {
        FtlConfig {
            geometry: NandGeometry::medium(),
            ..Self::znand_poc()
        }
    }

    /// Small geometry with generous over-provisioning for fast tests.
    pub fn small_for_tests() -> Self {
        FtlConfig {
            geometry: NandGeometry::small_for_tests(),
            timing: NandTiming::znand_poc(),
            export_fraction: 0.75,
            gc_low_watermark: 4,
            static_wl_threshold: 50,
            read_retries: 3,
            seed: 42,
        }
    }

    /// Number of exported logical pages.
    pub fn export_pages(&self) -> u64 {
        (self.geometry.total_pages() as f64 * self.export_fraction) as u64
    }
}

/// FTL counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host page writes.
    pub host_writes: u64,
    /// Host page reads (mapped).
    pub host_reads: u64,
    /// Host reads of never-written pages (served as zeros).
    pub unmapped_reads: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Pages relocated by GC.
    pub gc_moved_pages: u64,
    /// Blocks retired as bad.
    pub blocks_retired: u64,
    /// ECC words corrected across all reads.
    pub words_corrected: u64,
    /// Re-reads issued by the read-retry ladder.
    pub read_retries: u64,
    /// Reads that failed decode but were recovered by a re-read.
    pub read_retry_recovered: u64,
    /// Pages scrub-remapped onto fresh cells after a retry recovery.
    pub retry_remaps: u64,
    /// Reads that exhausted the retry ladder and surfaced
    /// [`NandError::Uncorrectable`].
    pub uncorrectable_surfaced: u64,
    /// Proactive housekeeping invocations that found work to do.
    pub hk_runs: u64,
    /// Pages relocated by proactive housekeeping.
    pub hk_moved_pages: u64,
}

impl FtlStats {
    /// Write amplification factor: (host + GC writes) / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 1.0;
        }
        (self.host_writes + self.gc_moved_pages) as f64 / self.host_writes as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Active,
    Closed,
    Bad,
}

/// Opaque snapshot of an [`Ftl`]'s power-cut-persistent state: the full
/// logical→physical map, per-block valid counts and states, the
/// free-block heaps, open active blocks, the allocation round-robin
/// cursor, the FTL counters, and a [`MediaSnapshot`] of the array
/// underneath.
///
/// The NVMC firmware keeps its mapping tables in battery-backed SRAM
/// and journals them to NAND on power loss (paper §III-A "bad-block
/// management ... wear-leveling"), so the map is part of the persistent
/// domain — a crash-and-reboot restores it exactly.
#[derive(Debug, Clone)]
pub struct FtlSnapshot {
    media: MediaSnapshot,
    l2p: HashMap<u64, PhysPage>,
    p2l: HashMap<u64, u64>,
    valid: Vec<u32>,
    state: Vec<BlockState>,
    free: Vec<BinaryHeap<Reverse<(u32, u64)>>>,
    actives: Vec<Option<u64>>,
    rr: usize,
    stats: FtlStats,
}

impl FtlSnapshot {
    /// Number of mapped logical pages at capture time.
    pub fn mapped_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// The media-level snapshot captured underneath the map.
    pub fn media(&self) -> &MediaSnapshot {
        &self.media
    }
}

/// The flash translation layer over a [`ZNandArray`].
///
/// # Example
///
/// ```
/// use nvdimmc_nand::{Ftl, FtlConfig};
/// use nvdimmc_sim::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ftl = Ftl::new(FtlConfig::small_for_tests());
/// let page = vec![0x42u8; 4096];
/// let done = ftl.write(10, &page, SimTime::ZERO)?;
/// let (data, _) = ftl.read(10, done)?;
/// assert_eq!(data, page);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Ftl {
    media: ZNandArray,
    codec: PageCodec,
    export_pages: u64,
    gc_low: usize,
    static_wl_threshold: u32,
    read_retries: u32,
    l2p: HashMap<u64, PhysPage>,
    p2l: HashMap<u64, u64>,
    valid: Vec<u32>,
    state: Vec<BlockState>,
    /// Per-channel min-heaps of (erase_count, block) for least-worn
    /// allocation.
    free: Vec<BinaryHeap<Reverse<(u32, u64)>>>,
    /// Per-channel active (partially programmed) blocks.
    actives: Vec<Option<u64>>,
    rr: usize,
    stats: FtlStats,
}

impl Ftl {
    /// Creates a pristine FTL.
    pub fn new(cfg: FtlConfig) -> Self {
        let geo = cfg.geometry;
        let media = ZNandArray::new(geo, cfg.timing, cfg.seed);
        let nblocks = geo.total_blocks();
        let mut free: Vec<BinaryHeap<Reverse<(u32, u64)>>> =
            (0..geo.channels).map(|_| BinaryHeap::new()).collect();
        for b in 0..nblocks {
            let (ch, _, _, _) = geo.split_block(b);
            free[ch as usize].push(Reverse((0, b)));
        }
        Ftl {
            media,
            codec: PageCodec::new(geo.page_bytes as usize),
            export_pages: cfg.export_pages(),
            gc_low: cfg.gc_low_watermark,
            static_wl_threshold: cfg.static_wl_threshold,
            read_retries: cfg.read_retries,
            l2p: HashMap::new(),
            p2l: HashMap::new(),
            valid: vec![0; nblocks as usize],
            state: vec![BlockState::Free; nblocks as usize],
            free,
            actives: vec![None; geo.channels as usize],
            rr: 0,
            stats: FtlStats::default(),
        }
    }

    /// Number of exported logical pages.
    pub fn export_pages(&self) -> u64 {
        self.export_pages
    }

    /// Exported capacity in bytes.
    pub fn export_bytes(&self) -> u64 {
        self.export_pages * u64::from(self.media.geometry().page_bytes)
    }

    /// Counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// The media under the FTL (for test oracles and wear inspection).
    pub fn media(&self) -> &ZNandArray {
        &self.media
    }

    /// Mutable media access (test hooks: error injection).
    pub fn media_mut(&mut self) -> &mut ZNandArray {
        &mut self.media
    }

    /// Captures the power-cut-persistent state of the FTL and its media
    /// (see [`FtlSnapshot`]).
    pub fn snapshot(&self) -> FtlSnapshot {
        FtlSnapshot {
            media: self.media.snapshot(),
            l2p: self.l2p.clone(),
            p2l: self.p2l.clone(),
            valid: self.valid.clone(),
            state: self.state.clone(),
            free: self.free.clone(),
            actives: self.actives.clone(),
            rr: self.rr,
            stats: self.stats,
        }
    }

    /// Restores the FTL (and the media under it) to a previously
    /// captured snapshot, modelling a power-cut-and-reboot: the mapping
    /// tables and cell contents come back exactly; volatile device
    /// timing resets (see [`ZNandArray::restore`]).
    pub fn restore(&mut self, snap: &FtlSnapshot) {
        self.media.restore(&snap.media);
        self.l2p = snap.l2p.clone();
        self.p2l = snap.p2l.clone();
        self.valid = snap.valid.clone();
        self.state = snap.state.clone();
        self.free = snap.free.clone();
        self.actives = snap.actives.clone();
        self.rr = snap.rr;
        self.stats = snap.stats;
    }

    /// Spread between the most- and least-erased usable blocks.
    pub fn wear_spread(&self) -> u32 {
        let geo = *self.media.geometry();
        let mut lo = u32::MAX;
        let mut hi = 0;
        for b in 0..geo.total_blocks() {
            if self.state[b as usize] == BlockState::Bad {
                continue;
            }
            let e = self.media.erase_count(b);
            lo = lo.min(e);
            hi = hi.max(e);
        }
        hi.saturating_sub(lo)
    }

    /// Total free blocks across channels.
    pub fn free_blocks(&self) -> usize {
        self.free.iter().map(BinaryHeap::len).sum()
    }

    fn check_lpn(&self, lpn: u64) -> Result<(), NandError> {
        if lpn >= self.export_pages {
            return Err(NandError::LogicalOutOfRange {
                lpn,
                capacity_pages: self.export_pages,
            });
        }
        Ok(())
    }

    /// Whether `lpn` currently maps to physical media (i.e. has ever been
    /// written and not trimmed).
    pub fn is_mapped(&self, lpn: u64) -> bool {
        self.l2p.contains_key(&lpn)
    }

    /// Reads logical page `lpn`. Never-written pages read as zeros (like a
    /// fresh block device).
    ///
    /// # Errors
    ///
    /// Fails for out-of-range LPNs and uncorrectable media errors.
    pub fn read(&mut self, lpn: u64, at: SimTime) -> Result<(Vec<u8>, SimTime), NandError> {
        self.check_lpn(lpn)?;
        let Some(&phys) = self.l2p.get(&lpn) else {
            self.stats.unmapped_reads += 1;
            return Ok((vec![0u8; self.codec.page_bytes()], at));
        };
        let (data, done, retried) = self.read_decoded(phys, at)?;
        self.stats.host_reads += 1;
        if retried {
            // The page decoded only on a re-read: its cells are marginal.
            // Scrub-remap it onto a fresh physical page so the next read
            // does not start from the same cliff edge. The remap is a
            // background relocation (GC-class write): it must not turn a
            // successful read into an error, so a full device is tolerated.
            if let Ok(fresh) = self.codec.encode(&data) {
                if self.write_stored(lpn, &fresh, done, true).is_ok() {
                    self.stats.retry_remaps += 1;
                }
            }
        }
        Ok((data, done))
    }

    /// Reads and decodes a physical page, climbing the read-retry ladder
    /// on decode failure. Returns the data, the completion instant, and
    /// whether a retry was needed.
    fn read_decoded(
        &mut self,
        phys: PhysPage,
        at: SimTime,
    ) -> Result<(Vec<u8>, SimTime, bool), NandError> {
        let (stored, mut done) = self.media.read(phys, at)?;
        match self.codec.decode(&stored) {
            Ok((data, corrected)) => {
                self.stats.words_corrected += corrected;
                Ok((data, done, false))
            }
            Err(_) => {
                for _ in 0..self.read_retries {
                    self.stats.read_retries += 1;
                    let (stored, next) = self.media.read(phys, done)?;
                    done = next;
                    if let Ok((data, corrected)) = self.codec.decode(&stored) {
                        self.stats.words_corrected += corrected;
                        self.stats.read_retry_recovered += 1;
                        return Ok((data, done, true));
                    }
                }
                self.stats.uncorrectable_surfaced += 1;
                Err(NandError::Uncorrectable { page: phys })
            }
        }
    }

    /// Writes logical page `lpn`, remapping it to a fresh physical page.
    /// Returns the program completion instant.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range LPNs, wrong-sized buffers, or when the
    /// device is truly out of writable space.
    pub fn write(&mut self, lpn: u64, data: &[u8], at: SimTime) -> Result<SimTime, NandError> {
        self.check_lpn(lpn)?;
        let stored = self.codec.encode(data)?;
        let done = self.write_stored(lpn, &stored, at, false)?;
        self.stats.host_writes += 1;
        Ok(done)
    }

    /// Drops the mapping for `lpn` (TRIM/discard).
    ///
    /// # Errors
    ///
    /// Fails for out-of-range LPNs.
    pub fn trim(&mut self, lpn: u64) -> Result<(), NandError> {
        self.check_lpn(lpn)?;
        if let Some(phys) = self.l2p.remove(&lpn) {
            self.invalidate(phys);
        }
        Ok(())
    }

    fn invalidate(&mut self, phys: PhysPage) {
        let geo = *self.media.geometry();
        let flat = phys.flat_index(&geo);
        if self.p2l.remove(&flat).is_some() {
            let v = &mut self.valid[phys.block as usize];
            debug_assert!(*v > 0, "valid-count underflow on block {}", phys.block);
            *v = v.saturating_sub(1);
        }
    }

    fn write_stored(
        &mut self,
        lpn: u64,
        stored: &[u8],
        at: SimTime,
        is_gc: bool,
    ) -> Result<SimTime, NandError> {
        let geo = *self.media.geometry();
        // Bounded retries across bad-block failures.
        for _ in 0..64 {
            let ch = self.rr % geo.channels as usize;
            self.rr += 1;
            let Some(block) = self.ensure_active(ch, at, is_gc)? else {
                continue; // this channel is out of blocks; try next
            };
            let page = self.media.write_pointer(block);
            let phys = PhysPage { block, page };
            match self.media.program(phys, stored, at) {
                Ok(done) => {
                    if let Some(old) = self.l2p.insert(lpn, phys) {
                        self.invalidate(old);
                    }
                    self.p2l.insert(phys.flat_index(&geo), lpn);
                    self.valid[block as usize] += 1;
                    if self.media.write_pointer(block) == geo.pages_per_block {
                        self.state[block as usize] = BlockState::Closed;
                        self.actives[ch] = None;
                    }
                    return Ok(done);
                }
                Err(NandError::BadBlock { .. }) => {
                    self.retire(block);
                    self.actives[ch] = None;
                }
                Err(e) => return Err(e),
            }
        }
        Err(NandError::OutOfSpace)
    }

    fn retire(&mut self, block: u64) {
        self.state[block as usize] = BlockState::Bad;
        self.media.mark_bad(block);
        self.stats.blocks_retired += 1;
    }

    /// Returns the active block for `ch`, allocating (and running GC if
    /// needed) when none is open.
    fn ensure_active(
        &mut self,
        ch: usize,
        at: SimTime,
        is_gc: bool,
    ) -> Result<Option<u64>, NandError> {
        if let Some(b) = self.actives[ch] {
            return Ok(Some(b));
        }
        // Host writes keep a GC reserve; GC itself may dig into it.
        if !is_gc && self.free_blocks() <= self.gc_low {
            self.collect(at)?;
            // GC's own relocation writes may have opened an active block on
            // this channel; reuse it rather than orphaning it.
            if let Some(b) = self.actives[ch] {
                return Ok(Some(b));
            }
        }
        match self.free[ch].pop() {
            Some(Reverse((_, b))) => {
                self.state[b as usize] = BlockState::Active;
                self.actives[ch] = Some(b);
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    /// Greedy garbage collection: free blocks until above the watermark.
    fn collect(&mut self, at: SimTime) -> Result<(), NandError> {
        let geo = *self.media.geometry();
        self.stats.gc_runs += 1;
        let mut guard = 0;
        while self.free_blocks() <= self.gc_low {
            guard += 1;
            if guard > geo.total_blocks() {
                break;
            }
            let Some(victim) = self.pick_victim() else {
                break;
            };
            // Relocate still-valid pages.
            for page in 0..self.media.write_pointer(victim) {
                let phys = PhysPage {
                    block: victim,
                    page,
                };
                let flat = phys.flat_index(&geo);
                let Some(&lpn) = self.p2l.get(&flat) else {
                    continue;
                };
                // Scrub through the codec (with the same read-retry ladder
                // as host reads) so latent single-bit errors do not
                // accumulate across relocations.
                let (data, _, _) = self.read_decoded(phys, at)?;
                let fresh = self.codec.encode(&data)?;
                self.write_stored(lpn, &fresh, at, true)?;
                self.stats.gc_moved_pages += 1;
            }
            match self.media.erase(victim, at) {
                Ok(_) => {
                    self.state[victim as usize] = BlockState::Free;
                    self.valid[victim as usize] = 0;
                    let (ch, _, _, _) = geo.split_block(victim);
                    self.free[ch as usize].push(Reverse((self.media.erase_count(victim), victim)));
                }
                Err(NandError::BadBlock { .. }) => {
                    self.retire(victim);
                    self.valid[victim as usize] = 0;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Proactive housekeeping: when the free pool is merely *getting*
    /// low (at or below twice the GC watermark), reclaim a single victim
    /// block so foreground writes do not hit the synchronous
    /// `Ftl::collect` cliff later. One victim per call keeps each
    /// maintenance slot bounded; returns the number of pages relocated
    /// (0 when the pool is comfortable or no victim qualifies).
    ///
    /// # Errors
    ///
    /// Surfaces media errors from the relocation reads/writes; bad
    /// blocks discovered by the erase are retired, not errors.
    pub fn housekeeping(&mut self, at: SimTime) -> Result<u64, NandError> {
        if self.free_blocks() > self.gc_low * 2 {
            return Ok(0);
        }
        let Some(victim) = self.pick_victim() else {
            return Ok(0);
        };
        let geo = *self.media.geometry();
        let mut moved = 0u64;
        for page in 0..self.media.write_pointer(victim) {
            let phys = PhysPage {
                block: victim,
                page,
            };
            let flat = phys.flat_index(&geo);
            let Some(&lpn) = self.p2l.get(&flat) else {
                continue;
            };
            let (data, _, _) = self.read_decoded(phys, at)?;
            let fresh = self.codec.encode(&data)?;
            self.write_stored(lpn, &fresh, at, true)?;
            moved += 1;
        }
        match self.media.erase(victim, at) {
            Ok(_) => {
                self.state[victim as usize] = BlockState::Free;
                self.valid[victim as usize] = 0;
                let (ch, _, _, _) = geo.split_block(victim);
                self.free[ch as usize].push(Reverse((self.media.erase_count(victim), victim)));
            }
            Err(NandError::BadBlock { .. }) => {
                self.retire(victim);
                self.valid[victim as usize] = 0;
            }
            Err(e) => return Err(e),
        }
        self.stats.hk_runs += 1;
        self.stats.hk_moved_pages += moved;
        Ok(moved)
    }

    /// Picks the GC victim: the closed block with the fewest valid pages;
    /// under high wear spread, the coldest (least-erased) closed block
    /// instead, so cold data gets recycled onto worn blocks.
    fn pick_victim(&self) -> Option<u64> {
        let geo = self.media.geometry();
        let ppb = geo.pages_per_block;
        let static_wl = self.wear_spread() > self.static_wl_threshold;
        let mut best: Option<(u64, u64)> = None; // (score, block)
        for b in 0..geo.total_blocks() {
            if self.state[b as usize] != BlockState::Closed {
                continue;
            }
            let v = self.valid[b as usize];
            if v >= ppb {
                continue; // nothing to gain
            }
            let score = if static_wl {
                u64::from(self.media.erase_count(b)) * u64::from(ppb) + u64::from(v)
            } else {
                u64::from(v)
            };
            match best {
                Some((s, _)) if s <= score => {}
                _ => best = Some((score, b)),
            }
        }
        best.map(|(_, b)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_sim::DeterministicRng;

    fn ftl() -> Ftl {
        let mut f = Ftl::new(FtlConfig::small_for_tests());
        f.media_mut().set_ber_per_read(0.0);
        f
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = ftl();
        let done = f.write(5, &page(0xAB), SimTime::ZERO).unwrap();
        let (data, _) = f.read(5, done).unwrap();
        assert_eq!(data, page(0xAB));
    }

    #[test]
    fn unwritten_page_reads_zero() {
        let mut f = ftl();
        let (data, ready) = f.read(100, SimTime::from_us(3)).unwrap();
        assert_eq!(data, page(0));
        assert_eq!(ready, SimTime::from_us(3), "no media access needed");
        assert_eq!(f.stats().unmapped_reads, 1);
    }

    #[test]
    fn overwrite_remaps_and_invalidates() {
        let mut f = ftl();
        let t1 = f.write(7, &page(1), SimTime::ZERO).unwrap();
        let p1 = f.l2p[&7];
        let t2 = f.write(7, &page(2), t1).unwrap();
        let p2 = f.l2p[&7];
        assert_ne!(p1, p2, "out-of-place update");
        let (data, _) = f.read(7, t2).unwrap();
        assert_eq!(data, page(2));
    }

    #[test]
    fn lpn_out_of_range_rejected() {
        let mut f = ftl();
        let too_big = f.export_pages();
        assert!(matches!(
            f.write(too_big, &page(0), SimTime::ZERO),
            Err(NandError::LogicalOutOfRange { .. })
        ));
        assert!(f.read(too_big, SimTime::ZERO).is_err());
    }

    #[test]
    fn trim_drops_mapping() {
        let mut f = ftl();
        let done = f.write(9, &page(9), SimTime::ZERO).unwrap();
        f.trim(9).unwrap();
        let (data, _) = f.read(9, done).unwrap();
        assert_eq!(data, page(0));
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        let mut f = ftl();
        let export = f.export_pages();
        let mut t = SimTime::ZERO;
        let mut rng = DeterministicRng::new(1);
        // Write ~3x the exported capacity at random: forces GC.
        for i in 0..(export * 3) {
            let lpn = rng.gen_range(0..export);
            t = f.write(lpn, &page((i % 256) as u8), t).unwrap();
        }
        assert!(f.stats().gc_runs > 0, "GC never ran");
        assert!(
            f.stats().write_amplification() > 1.0,
            "GC moved no pages (WAF = {})",
            f.stats().write_amplification()
        );
        // Device still readable and consistent for a fresh write.
        let t2 = f.write(0, &page(0xEE), t).unwrap();
        let (data, _) = f.read(0, t2).unwrap();
        assert_eq!(data, page(0xEE));
    }

    #[test]
    fn data_survives_gc() {
        let mut f = ftl();
        let export = f.export_pages();
        let keep = 16u64.min(export / 4);
        let mut t = SimTime::ZERO;
        // Pin distinctive data in the first `keep` pages.
        for lpn in 0..keep {
            t = f.write(lpn, &page(0x80 | lpn as u8), t).unwrap();
        }
        // Churn the rest hard.
        let mut rng = DeterministicRng::new(2);
        for i in 0..(export * 2) {
            let lpn = keep + rng.gen_range(0..(export - keep));
            t = f.write(lpn, &page((i % 251) as u8), t).unwrap();
        }
        for lpn in 0..keep {
            let (data, _) = f.read(lpn, t).unwrap();
            assert_eq!(data, page(0x80 | lpn as u8), "lpn {lpn} corrupted by GC");
        }
    }

    #[test]
    fn wear_stays_level_under_churn() {
        let mut f = ftl();
        let export = f.export_pages();
        let mut t = SimTime::ZERO;
        let mut rng = DeterministicRng::new(3);
        for i in 0..(export * 4) {
            let lpn = rng.gen_range(0..export);
            t = f.write(lpn, &page((i % 256) as u8), t).unwrap();
        }
        let spread = f.wear_spread();
        let max_seen = (0..f.media().geometry().total_blocks())
            .map(|b| f.media().erase_count(b))
            .max()
            .unwrap();
        assert!(
            spread <= max_seen.max(4),
            "wear spread {spread} vs max {max_seen}"
        );
    }

    #[test]
    fn ecc_corrects_media_bitflips_end_to_end() {
        let mut f = Ftl::new(FtlConfig::small_for_tests());
        f.media_mut().set_ber_per_read(0.9); // flip a bit on ~every read
        let done = f.write(1, &page(0x77), SimTime::ZERO).unwrap();
        for _ in 0..50 {
            let (data, _) = f.read(1, done).unwrap();
            assert_eq!(data, page(0x77));
        }
        assert!(f.stats().words_corrected > 0, "ECC never engaged");
    }

    #[test]
    fn uncorrectable_error_surfaces() {
        let mut f = ftl();
        let done = f.write(1, &page(0x11), SimTime::ZERO).unwrap();
        let phys = f.l2p[&1];
        // Two bit flips inside the same 64-bit word: beyond SEC-DED.
        f.media_mut().corrupt(phys, &[0, 1]);
        assert!(matches!(
            f.read(1, done),
            Err(NandError::Uncorrectable { .. })
        ));
        // The whole ladder was climbed before giving up.
        assert_eq!(f.stats().read_retries, 3);
        assert_eq!(f.stats().uncorrectable_surfaced, 1);
        assert_eq!(f.stats().read_retry_recovered, 0);
    }

    #[test]
    fn transient_uncorrectable_recovered_by_retry_and_remapped() {
        let mut f = ftl();
        let done = f.write(1, &page(0x33), SimTime::ZERO).unwrap();
        let before = f.l2p[&1];
        f.media_mut().arm_uncorrectable(false);
        let (data, _) = f.read(1, done).expect("retry ladder must recover");
        assert_eq!(data, page(0x33));
        let s = f.stats();
        assert_eq!(s.read_retry_recovered, 1);
        assert!(s.read_retries >= 1);
        assert_eq!(s.uncorrectable_surfaced, 0);
        assert_eq!(s.retry_remaps, 1, "marginal page must be scrubbed");
        assert_ne!(f.l2p[&1], before, "remap must move the page");
        // And the relocated copy reads back clean.
        let (data, _) = f.read(1, done).unwrap();
        assert_eq!(data, page(0x33));
    }

    #[test]
    fn persistent_uncorrectable_exhausts_ladder() {
        let mut f = ftl();
        let done = f.write(2, &page(0x44), SimTime::ZERO).unwrap();
        f.media_mut().arm_uncorrectable(true);
        assert!(matches!(
            f.read(2, done),
            Err(NandError::Uncorrectable { .. })
        ));
        let s = f.stats();
        assert_eq!(s.read_retries, 3);
        assert_eq!(s.uncorrectable_surfaced, 1);
        assert_eq!(f.media().stats().uncorrectable_injected, 1);
    }

    #[test]
    fn housekeeping_reclaims_before_the_gc_cliff() {
        let mut f = ftl();
        let export = f.export_pages();
        let mut t = SimTime::ZERO;
        let mut rng = DeterministicRng::new(4);
        // Comfortable pool: housekeeping is a no-op.
        assert_eq!(f.housekeeping(t).unwrap(), 0);
        // Churn until the pool is inside the proactive band.
        let mut i = 0u64;
        while f.free_blocks() > f.gc_low * 2 && i < export * 4 {
            let lpn = rng.gen_range(0..export);
            t = f.write(lpn, &page((i % 256) as u8), t).unwrap();
            i += 1;
        }
        let before = f.free_blocks();
        f.housekeeping(t).unwrap();
        assert!(f.stats().hk_runs >= 1, "housekeeping never engaged");
        assert!(
            f.free_blocks() >= before,
            "housekeeping must not shrink the free pool"
        );
        // Data still intact after background relocation.
        let t2 = f.write(0, &page(0xCD), t).unwrap();
        let (data, _) = f.read(0, t2).unwrap();
        assert_eq!(data, page(0xCD));
    }

    #[test]
    fn snapshot_restore_preserves_map_and_data() {
        let mut f = ftl();
        let export = f.export_pages();
        let mut t = SimTime::ZERO;
        // Enough churn to open actives on both channels and run GC once.
        let mut rng = DeterministicRng::new(11);
        for i in 0..(export * 2) {
            let lpn = rng.gen_range(0..export);
            t = f.write(lpn, &page((i % 256) as u8), t).unwrap();
        }
        let snap = f.snapshot();
        assert!(snap.mapped_pages() > 0);
        let l2p_before = f.l2p.clone();
        let free_before = f.free_blocks();
        // Diverge heavily, then reboot into the snapshot.
        for i in 0..export {
            t = f.write(i % export, &page(0xEE), t).unwrap();
        }
        f.restore(&snap);
        assert_eq!(f.l2p, l2p_before, "mapping table restored");
        assert_eq!(f.free_blocks(), free_before, "free pool restored");
        // Every mapped page reads back as a decodable, CRC-clean page —
        // the map and the cells agree again.
        for (&lpn, _) in l2p_before.iter().take(32) {
            f.read(lpn, t).unwrap();
        }
        // The restored FTL is fully writable (heaps/actives consistent).
        let t2 = f.write(0, &page(0xAB), t).unwrap();
        let (data, _) = f.read(0, t2).unwrap();
        assert_eq!(data, page(0xAB));
    }

    #[test]
    fn writes_spread_across_channels() {
        let mut f = ftl();
        let mut t = SimTime::ZERO;
        for lpn in 0..8 {
            t = f.write(lpn, &page(lpn as u8), t).unwrap();
        }
        let geo = *f.media().geometry();
        let channels: std::collections::HashSet<u32> =
            (0..8u64).map(|lpn| f.l2p[&lpn].channel(&geo)).collect();
        assert_eq!(channels.len(), 2, "both channels used");
    }

    #[test]
    fn bad_page_size_rejected() {
        let mut f = ftl();
        assert!(matches!(
            f.write(0, &[0u8; 100], SimTime::ZERO),
            Err(NandError::BadPageSize { .. })
        ));
    }
}
