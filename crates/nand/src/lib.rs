//! # nvdimmc-nand — Z-NAND media, ECC and flash translation layer
//!
//! The NVDIMM-C back end: a model of the two 64 GB Z-NAND (low-latency SLC
//! NAND) packages behind the module's NVM controller, plus everything the
//! paper says the NVMC firmware implements (§III-A): "wear-leveling,
//! garbage collection, and bad-block management ... with error correction
//! code (ECC) at the granularity of 4KB".
//!
//! Layering, bottom-up:
//!
//! - [`geometry`] / [`media`] — the raw NAND array: channels, dies, planes,
//!   blocks, pages; erase-before-program and sequential-page-programming
//!   constraints; wear tracking; wear-dependent bit-error injection and
//!   occasional block failure;
//! - [`ecc`] — Hamming SEC-DED(72,64) per 64-bit word plus a page CRC-32,
//!   implemented from scratch;
//! - [`ftl`] — page-mapped flash translation layer: logical-to-physical
//!   map, greedy garbage collection, least-worn allocation (dynamic wear
//!   leveling), and bad-block remapping;
//! - [`nvmc`] — the NAND side of the NVM controller: per-channel
//!   parallelism, a bounded controller write buffer that acknowledges
//!   programs early (how the PoC hides Z-NAND's ~100 µs tPROG), and
//!   service-time accounting in simulated time.
//!
//! # Example
//!
//! ```
//! use nvdimmc_nand::{Nvmc, NvmcConfig};
//! use nvdimmc_sim::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nvmc = Nvmc::new(NvmcConfig::small_for_tests())?;
//! let page = vec![7u8; 4096];
//! let done = nvmc.write_page(3, &page, SimTime::ZERO)?;
//! let (data, _ready) = nvmc.read_page(3, done)?;
//! assert_eq!(data, page);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod ecc;
pub mod error;
pub mod ftl;
pub mod geometry;
pub mod media;
pub mod nvmc;

pub use ecc::{Ecc, EccStats, PageCodec};
pub use error::NandError;
pub use ftl::{Ftl, FtlConfig, FtlSnapshot, FtlStats};
pub use geometry::{NandGeometry, PhysPage};
pub use media::{MediaSnapshot, NandTiming, ZNandArray};
pub use nvmc::{Nvmc, NvmcConfig, NvmcSnapshot, NvmcStats};
