//! The NAND side of the NVM controller (NVMC).
//!
//! Wraps the [`Ftl`] with the controller behaviours that shape the paper's
//! measured service times:
//!
//! - a bounded SRAM **write buffer** that acknowledges programs as soon as
//!   the page is transferred into the controller — this is how a ~100 µs
//!   Z-NAND tPROG hides behind the ~70 µs Uncached writeback+cachefill
//!   latency the paper reports;
//! - **read-after-write** service from that buffer;
//! - per-channel/die parallelism inherited from the media model.

use crate::error::NandError;
use crate::ftl::{Ftl, FtlConfig, FtlSnapshot, FtlStats};
use nvdimmc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// NVMC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmcConfig {
    /// FTL / media configuration.
    pub ftl: FtlConfig,
    /// Pages the controller write buffer can hold before acknowledgements
    /// stall on programs.
    pub buffer_pages: usize,
    /// Time to land one page in the buffer (DMA into controller SRAM).
    pub buffer_latency: SimDuration,
}

impl NvmcConfig {
    /// The paper's PoC controller.
    pub fn znand_poc() -> Self {
        NvmcConfig {
            ftl: FtlConfig::znand_poc(),
            buffer_pages: 16,
            buffer_latency: SimDuration::from_us(1.0),
        }
    }

    /// Figure-scale media.
    pub fn medium() -> Self {
        NvmcConfig {
            ftl: FtlConfig::medium(),
            ..Self::znand_poc()
        }
    }

    /// Small media for fast tests.
    pub fn small_for_tests() -> Self {
        NvmcConfig {
            ftl: FtlConfig::small_for_tests(),
            buffer_pages: 16,
            buffer_latency: SimDuration::from_us(1.0),
        }
    }
}

/// NVMC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmcStats {
    /// Page reads served (from media or buffer).
    pub reads: u64,
    /// Reads served straight from the write buffer.
    pub buffer_hits: u64,
    /// Page writes accepted.
    pub writes: u64,
    /// Writes whose acknowledgement stalled on a full buffer.
    pub buffer_stalls: u64,
}

/// Opaque snapshot of an [`Nvmc`]'s power-cut-persistent state.
///
/// The controller's SRAM write buffer is *timing-only* in this model:
/// [`Nvmc::write_page`] lands the data in the FTL synchronously and the
/// buffer entries only shape acknowledgement/read-after-write timing.
/// A snapshot therefore carries just the [`FtlSnapshot`] plus the
/// controller counters; [`Nvmc::restore`] drops the buffered/in-flight
/// bookkeeping, exactly as a reboot empties controller SRAM — with no
/// data loss, because every acknowledged write already reached the FTL.
#[derive(Debug, Clone)]
pub struct NvmcSnapshot {
    ftl: FtlSnapshot,
    stats: NvmcStats,
}

impl NvmcSnapshot {
    /// The FTL-level snapshot inside.
    pub fn ftl(&self) -> &FtlSnapshot {
        &self.ftl
    }
}

/// The NVM controller: FTL + write buffer + service-time accounting.
///
/// # Example
///
/// ```
/// use nvdimmc_nand::{Nvmc, NvmcConfig};
/// use nvdimmc_sim::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nvmc = Nvmc::new(NvmcConfig::small_for_tests())?;
/// let ack = nvmc.write_page(0, &vec![1u8; 4096], SimTime::ZERO)?;
/// // The ack arrives long before the ~100us program completes:
/// assert!(ack < SimTime::from_us(50));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Nvmc {
    ftl: Ftl,
    buffer_pages: usize,
    buffer_latency: SimDuration,
    /// Program completion times of in-flight buffered writes (min-heap).
    inflight: BinaryHeap<std::cmp::Reverse<SimTime>>,
    /// Buffered page contents for read-after-write service.
    buffered: HashMap<u64, (Vec<u8>, SimTime)>,
    stats: NvmcStats,
}

impl Nvmc {
    /// Creates a controller over pristine media.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for configuration
    /// validation.
    pub fn new(cfg: NvmcConfig) -> Result<Self, NandError> {
        Ok(Nvmc {
            ftl: Ftl::new(cfg.ftl),
            buffer_pages: cfg.buffer_pages.max(1),
            buffer_latency: cfg.buffer_latency,
            inflight: BinaryHeap::new(),
            buffered: HashMap::new(),
            stats: NvmcStats::default(),
        })
    }

    /// Controller counters.
    pub fn stats(&self) -> NvmcStats {
        self.stats
    }

    /// FTL counters.
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl.stats()
    }

    /// The FTL (wear inspection, test hooks).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Mutable FTL access (test hooks).
    pub fn ftl_mut(&mut self) -> &mut Ftl {
        &mut self.ftl
    }

    /// Exported capacity in bytes (the paper exports 120 GB).
    pub fn export_bytes(&self) -> u64 {
        self.ftl.export_bytes()
    }

    /// Exported capacity in 4 KB pages.
    pub fn export_pages(&self) -> u64 {
        self.ftl.export_pages()
    }

    /// Captures the power-cut-persistent state of the controller (see
    /// [`NvmcSnapshot`]).
    pub fn snapshot(&self) -> NvmcSnapshot {
        NvmcSnapshot {
            ftl: self.ftl.snapshot(),
            stats: self.stats,
        }
    }

    /// Restores the controller to a previously captured snapshot,
    /// modelling a power-cut-and-reboot: the FTL and media come back
    /// exactly; the SRAM write buffer empties (timing-only state — no
    /// acknowledged data lives solely there).
    pub fn restore(&mut self, snap: &NvmcSnapshot) {
        self.ftl.restore(&snap.ftl);
        self.stats = snap.stats;
        self.inflight.clear();
        self.buffered.clear();
    }

    fn prune(&mut self, now: SimTime) {
        while let Some(&std::cmp::Reverse(t)) = self.inflight.peek() {
            if t <= now {
                self.inflight.pop();
            } else {
                break;
            }
        }
        self.buffered.retain(|_, (_, done)| *done > now);
    }

    /// Whether `lpn` holds data (in media or the write buffer).
    pub fn is_mapped(&self, lpn: u64) -> bool {
        self.buffered.contains_key(&lpn) || self.ftl.is_mapped(lpn)
    }

    /// Reads logical page `lpn`; returns the data and its ready time.
    ///
    /// # Errors
    ///
    /// Propagates FTL/media errors.
    pub fn read_page(&mut self, lpn: u64, at: SimTime) -> Result<(Vec<u8>, SimTime), NandError> {
        self.prune(at);
        self.stats.reads += 1;
        if let Some((data, _)) = self.buffered.get(&lpn) {
            self.stats.buffer_hits += 1;
            return Ok((data.clone(), at + self.buffer_latency));
        }
        self.ftl.read(lpn, at)
    }

    /// Writes logical page `lpn`; returns the **acknowledgement** time —
    /// when the page is safely in the controller buffer — which precedes
    /// the physical program completion unless the buffer is full.
    ///
    /// # Errors
    ///
    /// Propagates FTL/media errors.
    pub fn write_page(&mut self, lpn: u64, data: &[u8], at: SimTime) -> Result<SimTime, NandError> {
        self.prune(at);
        let program_done = self.ftl.write(lpn, data, at)?;
        self.inflight.push(std::cmp::Reverse(program_done));
        self.buffered.insert(lpn, (data.to_vec(), program_done));
        self.stats.writes += 1;
        let mut ack = at + self.buffer_latency;
        // Backpressure: with more in-flight programs than buffer slots, the
        // ack waits until enough of the oldest complete.
        while self.inflight.len() > self.buffer_pages {
            let Some(std::cmp::Reverse(t)) = self.inflight.pop() else {
                break;
            };
            ack = ack.max(t);
            self.stats.buffer_stalls += 1;
        }
        Ok(ack)
    }

    /// Service time of a 4 KB read issued at `at`, without moving data
    /// (used by capacity planning in the figure harness).
    ///
    /// # Errors
    ///
    /// Propagates FTL/media errors.
    pub fn probe_read_latency(&mut self, lpn: u64, at: SimTime) -> Result<SimDuration, NandError> {
        let (_, ready) = self.read_page(lpn, at)?;
        Ok(ready.since(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvmc() -> Nvmc {
        let mut n = Nvmc::new(NvmcConfig::small_for_tests()).unwrap();
        n.ftl_mut().media_mut().set_ber_per_read(0.0);
        n
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn ack_precedes_program_completion() {
        let mut n = nvmc();
        let ack = n.write_page(0, &page(1), SimTime::ZERO).unwrap();
        // Buffer latency 1us; program is 100us + transfer.
        assert!(ack <= SimTime::from_us(2));
    }

    #[test]
    fn read_after_write_served_from_buffer() {
        let mut n = nvmc();
        let ack = n.write_page(4, &page(0x55), SimTime::ZERO).unwrap();
        let (data, ready) = n.read_page(4, ack).unwrap();
        assert_eq!(data, page(0x55));
        assert!(ready <= ack + SimDuration::from_us(1.5));
        assert_eq!(n.stats().buffer_hits, 1);
    }

    #[test]
    fn buffer_backpressure_stalls_acks() {
        let mut n = nvmc();
        let mut t = SimTime::ZERO;
        let mut stalled = false;
        // Slam writes at time zero; with 16 slots and ~100us programs on 2
        // dies, acks must eventually wait.
        for i in 0..64u64 {
            let ack = n.write_page(i, &page(i as u8), t).unwrap();
            if ack.since(t) > SimDuration::from_us(10.0) {
                stalled = true;
            }
            t = t.max(SimTime::ZERO); // issue all at ~0
        }
        assert!(stalled, "write buffer never exerted backpressure");
        assert!(n.stats().buffer_stalls > 0);
    }

    #[test]
    fn read_latency_is_znand_class() {
        let mut n = nvmc();
        let ack = n.write_page(7, &page(9), SimTime::ZERO).unwrap();
        // Move past buffering so the read hits media.
        let late = ack + SimDuration::from_ms(10.0);
        let lat = n.probe_read_latency(7, late).unwrap();
        // tR 3us + PoC transfer 8us = 11us.
        assert_eq!(lat, SimDuration::from_us(11.0));
    }

    #[test]
    fn data_integrity_across_buffer_and_media() {
        let mut n = nvmc();
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            t = n.write_page(i % 10, &page((i % 256) as u8), t).unwrap();
        }
        // Drain everything, then verify the final values.
        let late = t + SimDuration::from_ms(50.0);
        for lpn in 0..10u64 {
            let expect = ((90 + lpn) % 256) as u8;
            let (data, _) = n.read_page(lpn, late).unwrap();
            assert_eq!(data, page(expect), "lpn {lpn}");
        }
    }

    #[test]
    fn snapshot_restore_drops_buffer_but_keeps_data() {
        let mut n = nvmc();
        let ack = n.write_page(3, &page(0x77), SimTime::ZERO).unwrap();
        let snap = n.snapshot();
        // Diverge: overwrite the page after the snapshot.
        n.write_page(3, &page(0x88), ack).unwrap();
        n.restore(&snap);
        // The acknowledged pre-snapshot write survives the "reboot" —
        // from media, not the (now empty) buffer.
        let (data, _) = n.read_page(3, ack).unwrap();
        assert_eq!(data, page(0x77));
        assert_eq!(n.stats().buffer_hits, 0, "buffer emptied by restore");
    }

    #[test]
    fn export_capacity_fraction() {
        let n = nvmc();
        let raw = n.ftl().media().geometry().raw_bytes();
        assert_eq!(n.export_bytes(), (raw as f64 * 0.75) as u64);
    }
}
