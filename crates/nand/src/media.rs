//! The raw Z-NAND array.
//!
//! Models the physical constraints the FTL exists to hide: erase-before-
//! program, sequential page programming within a block, per-die busy times
//! (Z-NAND reads are ~3 µs but programs are ~100 µs and erases ~1 ms),
//! wear accumulation, wear-dependent bit errors, and end-of-life block
//! failure.

use crate::error::NandError;
use crate::geometry::{NandGeometry, PhysPage};
use nvdimmc_sim::{DeterministicRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// NAND operation latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandTiming {
    /// Array read time (tR). Z-NAND's headline feature: ~3 µs.
    pub read: SimDuration,
    /// Page program time (tPROG), ~100 µs for SLC Z-NAND.
    pub program: SimDuration,
    /// Block erase time (tBERS), ~1 ms.
    pub erase: SimDuration,
    /// Channel transfer time for one stored page. The paper's PoC clocks
    /// the NAND PHY at 50 MHz — "a tenfold of the maximum operating
    /// frequency supported by the Z-NAND devices" slower — so this is
    /// configurable (PoC ≈ 8 µs, ASIC-class ≈ 1 µs).
    pub xfer: SimDuration,
}

impl NandTiming {
    /// Z-NAND behind the PoC's 50 MHz FPGA PHY.
    pub fn znand_poc() -> Self {
        NandTiming {
            read: SimDuration::from_us(3.0),
            program: SimDuration::from_us(100.0),
            erase: SimDuration::from_ms(1.0),
            xfer: SimDuration::from_us(8.0),
        }
    }

    /// Z-NAND behind a full-speed controller.
    pub fn znand_asic() -> Self {
        NandTiming {
            xfer: SimDuration::from_us(1.0),
            ..Self::znand_poc()
        }
    }
}

/// Media counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaStats {
    /// Page reads served.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Bit flips injected (wear model).
    pub bitflips_injected: u64,
    /// Reads that preempted (suspended) an in-flight program/erase.
    pub reads_suspending: u64,
    /// Program/erase operations that failed and marked a block bad.
    pub failures: u64,
    /// Forced-uncorrectable faults fired by the injection hook
    /// ([`ZNandArray::arm_uncorrectable`]).
    pub uncorrectable_injected: u64,
}

#[derive(Debug, Clone)]
struct BlockMeta {
    erase_count: u32,
    /// Next programmable page (sequential-programming pointer). Pages
    /// below this are programmed.
    next_page: u32,
    bad: bool,
}

/// Opaque snapshot of everything in a [`ZNandArray`] that survives a
/// power cut: block metadata (wear, write pointers, bad-block marks),
/// the stored page contents, the error-model RNG stream, armed
/// injection faults, and the media counters.
///
/// The per-die busy times are deliberately **not** captured: a reboot
/// resets the device timing domain, so [`ZNandArray::restore`] clears
/// them to zero. Counters and the RNG ride along so a restored array
/// continues the exact same deterministic error sequence the original
/// would have produced — replays stay bit-identical.
#[derive(Debug, Clone)]
pub struct MediaSnapshot {
    blocks: Vec<BlockMeta>,
    data: HashMap<u64, Vec<u8>>,
    rng: DeterministicRng,
    forced_transient: u32,
    forced_persistent: u32,
    stats: MediaStats,
}

impl MediaSnapshot {
    /// Bytes of page payload captured (sizing aid for sweep harnesses).
    pub fn stored_bytes(&self) -> u64 {
        self.data.values().map(|v| v.len() as u64).sum()
    }
}

/// The Z-NAND array: all channels/dies/planes/blocks.
///
/// Stores real bytes (sparsely) so data survives end-to-end through the
/// FTL and the NVDIMM-C cache above it.
#[derive(Debug)]
pub struct ZNandArray {
    geo: NandGeometry,
    timing: NandTiming,
    blocks: Vec<BlockMeta>,
    data: HashMap<u64, Vec<u8>>,
    die_busy: Vec<SimTime>,
    rng: DeterministicRng,
    /// Probability of one injected bit flip per page read at zero wear;
    /// scales linearly up to 100× at the endurance limit.
    ber_per_read: f64,
    /// Erase-count endurance limit; beyond it erases may brick the block.
    endurance: u32,
    /// Armed forced-uncorrectable faults: `(remaining, persistent)`. Each
    /// fault fires on one subsequent page read, flipping two bits inside a
    /// single 64-bit data word — exactly the pattern SEC-DED detects but
    /// cannot correct.
    forced_transient: u32,
    forced_persistent: u32,
    stats: MediaStats,
}

impl ZNandArray {
    /// Creates a pristine array.
    pub fn new(geo: NandGeometry, timing: NandTiming, seed: u64) -> Self {
        let nblocks = geo.total_blocks() as usize;
        let ndies = (geo.channels * geo.dies_per_channel) as usize;
        ZNandArray {
            geo,
            timing,
            blocks: vec![
                BlockMeta {
                    erase_count: 0,
                    next_page: 0,
                    bad: false,
                };
                nblocks
            ],
            data: HashMap::new(),
            die_busy: vec![SimTime::ZERO; ndies],
            rng: DeterministicRng::new(seed),
            ber_per_read: 1e-4,
            endurance: 50_000,
            forced_transient: 0,
            forced_persistent: 0,
            stats: MediaStats::default(),
        }
    }

    /// Captures the power-cut-persistent state of the array (see
    /// [`MediaSnapshot`]).
    pub fn snapshot(&self) -> MediaSnapshot {
        MediaSnapshot {
            blocks: self.blocks.clone(),
            data: self.data.clone(),
            rng: self.rng.clone(),
            forced_transient: self.forced_transient,
            forced_persistent: self.forced_persistent,
            stats: self.stats,
        }
    }

    /// Restores the array to a previously captured snapshot, modelling a
    /// reboot: persistent state (cells, wear, bad blocks) comes back
    /// exactly; the volatile per-die busy clocks reset to zero because
    /// the new boot starts a fresh timing domain.
    pub fn restore(&mut self, snap: &MediaSnapshot) {
        self.blocks = snap.blocks.clone();
        self.data = snap.data.clone();
        self.rng = snap.rng.clone();
        self.forced_transient = snap.forced_transient;
        self.forced_persistent = snap.forced_persistent;
        self.stats = snap.stats;
        for t in &mut self.die_busy {
            *t = SimTime::ZERO;
        }
    }

    /// Arms one forced-uncorrectable fault: the next page read returns
    /// data with two bits flipped inside one 64-bit word of the data
    /// region, which SEC-DED detects but cannot correct. A `persistent`
    /// fault also damages the stored copy, so re-reads keep failing; a
    /// transient fault corrupts only the returned copy, so a re-read (the
    /// read-retry ladder) can succeed.
    pub fn arm_uncorrectable(&mut self, persistent: bool) {
        if persistent {
            self.forced_persistent += 1;
        } else {
            self.forced_transient += 1;
        }
    }

    /// Forced-uncorrectable faults armed but not yet fired.
    pub fn armed_uncorrectable(&self) -> u32 {
        self.forced_transient + self.forced_persistent
    }

    /// Sets the base bit-error rate per page read (testing hook).
    pub fn set_ber_per_read(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in 0..=1");
        self.ber_per_read = p;
    }

    /// The geometry.
    pub fn geometry(&self) -> &NandGeometry {
        &self.geo
    }

    /// The timing parameters.
    pub fn timing(&self) -> &NandTiming {
        &self.timing
    }

    /// Counters.
    pub fn stats(&self) -> MediaStats {
        self.stats
    }

    /// Erase count of `block`.
    pub fn erase_count(&self, block: u64) -> u32 {
        self.blocks[block as usize].erase_count
    }

    /// Whether `block` is marked bad.
    pub fn is_bad(&self, block: u64) -> bool {
        self.blocks[block as usize].bad
    }

    /// Next programmable page index in `block`.
    pub fn write_pointer(&self, block: u64) -> u32 {
        self.blocks[block as usize].next_page
    }

    /// 64-bit words in the data region of a stored page. For codec-shaped
    /// pages (`data + data/8 parity + 4 CRC`) this excludes the parity and
    /// CRC tail; for raw test pages it falls back to the whole buffer.
    fn data_words(stored_len: usize) -> u64 {
        let len = stored_len as u64;
        if len > 4 && (len - 4).is_multiple_of(9) {
            (len - 4) * 8 / 9 / 8
        } else {
            (len / 8).max(1)
        }
    }

    fn die_index(&self, block: u64) -> usize {
        let (ch, die, _, _) = self.geo.split_block(block);
        (ch * self.geo.dies_per_channel + die) as usize
    }

    fn check(&self, p: PhysPage) -> Result<(), NandError> {
        if p.block >= self.geo.total_blocks() || p.page >= self.geo.pages_per_block {
            return Err(NandError::AddressOutOfRange { page: p });
        }
        if self.blocks[p.block as usize].bad {
            return Err(NandError::BadBlock { page: p });
        }
        Ok(())
    }

    fn occupy_die(&mut self, block: u64, at: SimTime, dur: SimDuration) -> SimTime {
        let die = self.die_index(block);
        let start = self.die_busy[die].max(at);
        let done = start + dur;
        self.die_busy[die] = done;
        done
    }

    /// When the die owning `block` becomes free.
    pub fn die_free_at(&self, block: u64) -> SimTime {
        self.die_busy[self.die_index(block)]
    }

    /// Reads a stored page. Returns the stored bytes and the completion
    /// instant (queueing behind the die + tR + transfer).
    ///
    /// # Errors
    ///
    /// Fails for out-of-range/bad-block addresses or unprogrammed pages.
    pub fn read(&mut self, p: PhysPage, at: SimTime) -> Result<(Vec<u8>, SimTime), NandError> {
        self.check(p)?;
        let meta = &self.blocks[p.block as usize];
        if p.page >= meta.next_page {
            return Err(NandError::ReadUnwritten { page: p });
        }
        let wear_scale = 1.0 + 99.0 * f64::from(meta.erase_count) / f64::from(self.endurance);
        let flip = self.rng.gen_bool((self.ber_per_read * wear_scale).min(1.0));
        let idx = p.flat_index(&self.geo);
        // `next_page` said the page is programmed; a missing backing
        // entry would mean the store lost it — surface, don't panic.
        let Some(mut bytes) = self.data.get(&idx).cloned() else {
            return Err(NandError::ReadUnwritten { page: p });
        };
        if flip {
            let bit = self.rng.gen_range(0..(bytes.len() as u64 * 8));
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.stats.bitflips_injected += 1;
        }
        if (self.forced_transient > 0 || self.forced_persistent > 0) && bytes.len() >= 8 {
            let persistent = self.forced_transient == 0;
            if persistent {
                self.forced_persistent -= 1;
            } else {
                self.forced_transient -= 1;
            }
            // Two flips inside one 64-bit word of the data region: SEC-DED
            // sees a double error it can detect but not correct.
            let data_words = Self::data_words(bytes.len());
            let wi = self.rng.gen_range(0..data_words);
            let b1 = self.rng.gen_range(0..64);
            let b2 = (b1 + 1 + self.rng.gen_range(0..63)) % 64;
            for b in [b1, b2] {
                let bit = wi * 64 + b;
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            if persistent {
                self.data.insert(idx, bytes.clone());
            }
            self.stats.uncorrectable_injected += 1;
        }
        // Z-NAND supports program/erase suspend: reads preempt queued
        // programs instead of waiting out their ~100 us tPROG. The die's
        // program backlog is unaffected (suspend-resume), so reads see
        // only tR + transfer.
        let die = self.die_index(p.block);
        if self.die_busy[die] > at {
            self.stats.reads_suspending += 1;
        }
        let done = at + self.timing.read + self.timing.xfer;
        self.stats.reads += 1;
        Ok((bytes, done))
    }

    /// Programs a page. NAND constraints: the block's pages must be
    /// programmed in order, each exactly once between erases.
    ///
    /// # Errors
    ///
    /// Fails for bad blocks, reprogramming, or out-of-order programming.
    pub fn program(
        &mut self,
        p: PhysPage,
        stored: &[u8],
        at: SimTime,
    ) -> Result<SimTime, NandError> {
        self.check(p)?;
        let meta = &mut self.blocks[p.block as usize];
        if p.page < meta.next_page {
            return Err(NandError::ProgramWithoutErase { page: p });
        }
        if p.page > meta.next_page {
            return Err(NandError::NonSequentialProgram {
                page: p,
                expected_page: meta.next_page,
            });
        }
        meta.next_page += 1;
        let idx = p.flat_index(&self.geo);
        self.data.insert(idx, stored.to_vec());
        let done = self.occupy_die(p.block, at, self.timing.xfer + self.timing.program);
        self.stats.programs += 1;
        Ok(done)
    }

    /// Erases a block. Past the endurance limit, erases may fail and mark
    /// the block bad.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range/bad blocks, or probabilistically at end of
    /// life (returning [`NandError::BadBlock`] after marking it).
    pub fn erase(&mut self, block: u64, at: SimTime) -> Result<SimTime, NandError> {
        let p = PhysPage { block, page: 0 };
        self.check(p)?;
        let endurance = self.endurance;
        let meta = &mut self.blocks[block as usize];
        meta.erase_count += 1;
        if meta.erase_count > endurance {
            // Past rated life: 2% failure chance per further erase.
            let dies = self.rng.gen_bool(0.02);
            if dies {
                self.blocks[block as usize].bad = true;
                self.stats.failures += 1;
                return Err(NandError::BadBlock { page: p });
            }
        }
        let meta = &mut self.blocks[block as usize];
        meta.next_page = 0;
        let pages = u64::from(self.geo.pages_per_block);
        let base = block * pages;
        for page in 0..pages {
            self.data.remove(&(base + page));
        }
        let done = self.occupy_die(block, at, self.timing.erase);
        self.stats.erases += 1;
        Ok(done)
    }

    /// Marks a block bad (factory bad-block table or controller decision).
    pub fn mark_bad(&mut self, block: u64) {
        self.blocks[block as usize].bad = true;
    }

    /// Test hook: flip `n` specific bits of a stored page in place.
    ///
    /// # Panics
    ///
    /// Panics if the page is not programmed.
    #[allow(clippy::expect_used)] // fault-injection hook, documented to panic
    pub fn corrupt(&mut self, p: PhysPage, bit_offsets: &[u64]) {
        let idx = p.flat_index(&self.geo);
        let bytes = self.data.get_mut(&idx).expect("page not programmed");
        for &bit in bit_offsets {
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> ZNandArray {
        let mut a = ZNandArray::new(NandGeometry::small_for_tests(), NandTiming::znand_poc(), 42);
        a.set_ber_per_read(0.0);
        a
    }

    #[test]
    fn program_read_roundtrip() {
        let mut a = array();
        let p = PhysPage { block: 0, page: 0 };
        let stored = vec![9u8; 100];
        let done = a.program(p, &stored, SimTime::ZERO).unwrap();
        assert!(done >= SimTime::ZERO + a.timing().program);
        let (bytes, _) = a.read(p, done).unwrap();
        assert_eq!(bytes, stored);
    }

    #[test]
    fn sequential_programming_enforced() {
        let mut a = array();
        let err = a.program(PhysPage { block: 0, page: 1 }, &[0], SimTime::ZERO);
        assert!(matches!(err, Err(NandError::NonSequentialProgram { .. })));
    }

    #[test]
    fn reprogram_without_erase_rejected() {
        let mut a = array();
        let p = PhysPage { block: 0, page: 0 };
        a.program(p, &[1], SimTime::ZERO).unwrap();
        let err = a.program(p, &[2], SimTime::from_us(200));
        assert!(matches!(err, Err(NandError::ProgramWithoutErase { .. })));
    }

    #[test]
    fn erase_resets_block() {
        let mut a = array();
        let p = PhysPage { block: 3, page: 0 };
        a.program(p, &[1], SimTime::ZERO).unwrap();
        let done = a.erase(3, SimTime::from_us(1_000)).unwrap();
        assert_eq!(a.erase_count(3), 1);
        assert_eq!(a.write_pointer(3), 0);
        assert!(matches!(
            a.read(p, done),
            Err(NandError::ReadUnwritten { .. })
        ));
        // Reprogramming page 0 is legal again.
        a.program(p, &[2], done).unwrap();
    }

    #[test]
    fn read_unwritten_rejected() {
        let mut a = array();
        let err = a.read(PhysPage { block: 0, page: 0 }, SimTime::ZERO);
        assert!(matches!(err, Err(NandError::ReadUnwritten { .. })));
    }

    #[test]
    fn die_busy_serializes_same_die_parallelizes_other_channel() {
        let mut a = array();
        // Blocks 0 and 2 share channel 0 (stride 2); block 1 is channel 1.
        let d0 = a
            .program(PhysPage { block: 0, page: 0 }, &[1], SimTime::ZERO)
            .unwrap();
        let d2 = a
            .program(PhysPage { block: 2, page: 0 }, &[1], SimTime::ZERO)
            .unwrap();
        let d1 = a
            .program(PhysPage { block: 1, page: 0 }, &[1], SimTime::ZERO)
            .unwrap();
        assert!(d2 > d0, "same die serializes");
        assert_eq!(d1, d0, "other channel runs in parallel");
    }

    #[test]
    fn bad_block_rejected() {
        let mut a = array();
        a.mark_bad(5);
        assert!(matches!(
            a.program(PhysPage { block: 5, page: 0 }, &[1], SimTime::ZERO),
            Err(NandError::BadBlock { .. })
        ));
        assert!(a.is_bad(5));
    }

    #[test]
    fn wear_increases_bitflip_rate() {
        let mut a = ZNandArray::new(NandGeometry::small_for_tests(), NandTiming::znand_poc(), 7);
        a.set_ber_per_read(0.005);
        let mut t = SimTime::ZERO;
        let p = PhysPage { block: 0, page: 0 };
        // Phase 1: young block, 300 reads.
        t = a.program(p, &[0u8; 64], t).unwrap();
        for _ in 0..300 {
            let (_, t2) = a.read(p, t).unwrap();
            t = t2;
        }
        let flips_young = a.stats().bitflips_injected;
        // Phase 2: artificially worn to end of life, 300 reads.
        a.blocks[0].erase_count = a.endurance;
        for _ in 0..300 {
            let (_, t2) = a.read(p, t).unwrap();
            t = t2;
        }
        let flips_old = a.stats().bitflips_injected - flips_young;
        assert!(
            flips_old > flips_young.max(1) * 5,
            "worn block flipped {flips_old} vs young {flips_young}"
        );
    }

    #[test]
    fn armed_uncorrectable_fires_once_transient_vs_persistent() {
        let mut a = array();
        let p = PhysPage { block: 0, page: 0 };
        let stored = vec![0u8; 64];
        let t = a.program(p, &stored, SimTime::ZERO).unwrap();

        // Transient: the read copy is damaged, the stored copy is not.
        a.arm_uncorrectable(false);
        assert_eq!(a.armed_uncorrectable(), 1);
        let (bad, t2) = a.read(p, t).unwrap();
        assert_ne!(bad, stored, "fault must corrupt the returned copy");
        assert_eq!(a.armed_uncorrectable(), 0);
        let (clean, t3) = a.read(p, t2).unwrap();
        assert_eq!(clean, stored, "transient fault must not persist");

        // Persistent: the stored copy is damaged too.
        a.arm_uncorrectable(true);
        let (bad, t4) = a.read(p, t3).unwrap();
        let (still_bad, _) = a.read(p, t4).unwrap();
        assert_eq!(bad, still_bad, "persistent fault must survive re-reads");
        assert_ne!(still_bad, stored);
        assert_eq!(a.stats().uncorrectable_injected, 2);
    }

    #[test]
    fn snapshot_restore_roundtrips_persistent_state() {
        let mut a = array();
        let p = PhysPage { block: 0, page: 0 };
        let stored = vec![0x5Au8; 64];
        let t = a.program(p, &stored, SimTime::ZERO).unwrap();
        a.mark_bad(5);
        let snap = a.snapshot();
        // Mutate past the snapshot: new program, an erase, more wear.
        a.program(PhysPage { block: 0, page: 1 }, &[1u8; 64], t)
            .unwrap();
        a.erase(3, t).unwrap();
        a.restore(&snap);
        // Persistent facts are back to the capture point.
        assert_eq!(a.write_pointer(0), 1, "write pointer restored");
        assert_eq!(a.erase_count(3), 0, "erase count restored");
        assert!(a.is_bad(5), "bad-block mark restored");
        let (bytes, _) = a.read(p, SimTime::ZERO).unwrap();
        assert_eq!(bytes, stored, "page data restored");
        // The timing domain reset: every die is free at zero (reads
        // suspend rather than occupy, so the probe read left it alone).
        assert_eq!(a.die_free_at(0), SimTime::ZERO);
    }

    #[test]
    fn restore_replays_identical_rng_stream() {
        // Two arrays at the same snapshot must produce identical
        // downstream error-injection draws — the crash sweep's
        // bit-identical replay property.
        let mut a = ZNandArray::new(NandGeometry::small_for_tests(), NandTiming::znand_poc(), 9);
        a.set_ber_per_read(0.05);
        let p = PhysPage { block: 0, page: 0 };
        let mut t = a.program(p, &[0u8; 64], SimTime::ZERO).unwrap();
        for _ in 0..10 {
            let (_, t2) = a.read(p, t).unwrap();
            t = t2;
        }
        let snap = a.snapshot();
        let run = |arr: &mut ZNandArray, mut t: SimTime| {
            let mut flips = Vec::new();
            for _ in 0..50 {
                let (bytes, t2) = arr.read(p, t).unwrap();
                flips.push(bytes);
                t = t2;
            }
            flips
        };
        let first = run(&mut a, t);
        a.restore(&snap);
        let second = run(&mut a, t);
        assert_eq!(first, second, "restored RNG stream must replay exactly");
    }

    #[test]
    fn corrupt_hook_flips_bits() {
        let mut a = array();
        let p = PhysPage { block: 0, page: 0 };
        a.program(p, &[0u8; 8], SimTime::ZERO).unwrap();
        a.corrupt(p, &[0, 9]);
        let (bytes, _) = a.read(p, SimTime::from_us(1_000)).unwrap();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(bytes[1], 0x02);
    }
}
