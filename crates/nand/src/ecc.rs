//! Error-correcting codes for the 4 KB page path.
//!
//! The paper says the NVMC "performs the primitive NAND operations with
//! error correction code (ECC) at the granularity of 4KB" (§III-A). We
//! implement a classic **Hamming SEC-DED (72,64)** — the code DDR ECC DIMMs
//! and many SLC NAND controllers use — applied per 64-bit word, so a 4 KB
//! page carries 512 ECC bytes, plus a page-level CRC-32 for end-to-end
//! detection.

use serde::{Deserialize, Serialize};

/// Outcome statistics for a codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccStats {
    /// Words decoded clean.
    pub clean_words: u64,
    /// Single-bit errors corrected.
    pub corrected: u64,
    /// Double-bit (uncorrectable) errors detected.
    pub uncorrectable: u64,
}

/// The result of decoding one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// No error.
    Clean(u64),
    /// One bit flipped and corrected.
    Corrected(u64),
    /// Two or more bits flipped — detected but not correctable.
    Uncorrectable,
}

/// Hamming SEC-DED (72,64) over one 64-bit word.
///
/// Seven Hamming parity bits cover positions 1..=71 of the interleaved
/// codeword; an eighth overall-parity bit extends single-error-correction
/// to double-error-detection.
///
/// # Example
///
/// ```
/// use nvdimmc_nand::ecc::{Decode, Ecc};
///
/// let word = 0xDEAD_BEEF_CAFE_F00Du64;
/// let parity = Ecc::encode(word);
/// // A single flipped data bit is corrected:
/// let corrupted = word ^ (1 << 17);
/// assert_eq!(Ecc::decode(corrupted, parity), Decode::Corrected(word));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Ecc;

/// Precomputed code tables: per-parity-bit data masks and the codeword
/// position → data bit index map.
struct Tables {
    /// `masks[p]`: data bits whose codeword position has bit `p` set.
    masks: [u64; 7],
    /// Codeword position (1..=71) → data bit index, or `u8::MAX` for
    /// parity positions.
    pos_to_data: [u8; 72],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut masks = [0u64; 7];
        let mut pos_to_data = [u8::MAX; 72];
        let mut pos = 1u32;
        let mut i = 0u32;
        while i < 64 {
            if !pos.is_power_of_two() {
                pos_to_data[pos as usize] = i as u8;
                for (p, m) in masks.iter_mut().enumerate() {
                    if pos & (1 << p) != 0 {
                        *m |= 1u64 << i;
                    }
                }
                i += 1;
            }
            pos += 1;
        }
        Tables { masks, pos_to_data }
    })
}

#[inline]
fn parity64(x: u64) -> u8 {
    (x.count_ones() & 1) as u8
}

impl Ecc {
    /// Number of parity bits (7 Hamming + 1 overall).
    pub const PARITY_BITS: u32 = 8;

    /// Encodes a word, returning its parity byte (7 Hamming bits + overall
    /// parity in bit 7).
    pub fn encode(word: u64) -> u8 {
        let t = tables();
        let mut ham = 0u8;
        for p in 0..7 {
            ham |= parity64(word & t.masks[p]) << p;
        }
        // Overall parity covers all data and Hamming parity bits.
        let overall = parity64(word) ^ parity64(u64::from(ham));
        ham | (overall << 7)
    }

    /// Decodes a word given its parity byte.
    pub fn decode(word: u64, parity: u8) -> Decode {
        let t = tables();
        let mut syn = 0u32;
        for p in 0..7 {
            let bit = parity64(word & t.masks[p]) ^ ((parity >> p) & 1);
            syn |= u32::from(bit) << p;
        }
        let overall_now = parity64(word) ^ parity64(u64::from(parity & 0x7F));
        let overall_bad = overall_now != (parity >> 7) & 1;

        match (syn, overall_bad) {
            (0, false) => Decode::Clean(word),
            // Only the overall parity bit flipped; data intact.
            (0, true) => Decode::Corrected(word),
            (pos, true) => {
                // Single-bit error at codeword position `pos`.
                if pos <= 71 {
                    match t.pos_to_data[pos as usize] {
                        u8::MAX => Decode::Corrected(word), // a parity bit flipped
                        i => Decode::Corrected(word ^ (1u64 << i)),
                    }
                } else {
                    Decode::Uncorrectable
                }
            }
            // Non-zero syndrome with intact overall parity: double error.
            (_, false) => Decode::Uncorrectable,
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) computed with a generated table.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Table generated on first use; 256 entries.
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, e) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 == 1 { (c >> 1) ^ POLY } else { c >> 1 };
                }
                *e = c;
            }
            t
        })
    }
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Loads a little-endian u64 from a slice produced by `chunks_exact(8)`
/// without a fallible conversion (short slices read as zero-padded).
fn le_word(chunk: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    for (dst, src) in w.iter_mut().zip(chunk) {
        *dst = *src;
    }
    u64::from_le_bytes(w)
}

/// Encodes/decodes whole 4 KB pages: per-word SEC-DED plus a trailing
/// CRC-32 over the raw data.
///
/// # Example
///
/// ```
/// use nvdimmc_nand::PageCodec;
///
/// let codec = PageCodec::new(4096);
/// let page = vec![0x5Au8; 4096];
/// let mut stored = codec.encode(&page).unwrap();
/// stored[100] ^= 0x04; // flip one bit in flight
/// let (decoded, corrected) = codec.decode(&stored).unwrap();
/// assert_eq!(decoded, page);
/// assert_eq!(corrected, 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PageCodec {
    page_bytes: usize,
}

impl PageCodec {
    /// Creates a codec for pages of `page_bytes` data bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `page_bytes` is a positive multiple of 8.
    pub fn new(page_bytes: usize) -> Self {
        assert!(
            page_bytes > 0 && page_bytes.is_multiple_of(8),
            "page size must be a positive multiple of 8"
        );
        PageCodec { page_bytes }
    }

    /// Stored (data + ECC + CRC) size for one page.
    pub fn stored_bytes(&self) -> usize {
        self.page_bytes + self.page_bytes / 8 + 4
    }

    /// Data bytes per page.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Encodes `data` into its stored representation.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NandError::BadPageSize`] if `data` is not exactly
    /// one page.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<u8>, crate::NandError> {
        if data.len() != self.page_bytes {
            return Err(crate::NandError::BadPageSize {
                got: data.len(),
                want: self.page_bytes,
            });
        }
        let mut out = Vec::with_capacity(self.stored_bytes());
        out.extend_from_slice(data);
        for chunk in data.chunks_exact(8) {
            out.push(Ecc::encode(le_word(chunk)));
        }
        out.extend_from_slice(&crc32(data).to_le_bytes());
        Ok(out)
    }

    /// Decodes a stored page, correcting single-bit errors per word.
    /// Returns the data and the number of corrected words.
    ///
    /// # Errors
    ///
    /// Returns `None`-equivalent errors: [`crate::NandError::BadPageSize`]
    /// for a wrong-sized buffer, and a CRC/ECC failure is reported as
    /// `Err(())`-style `Uncorrectable` via [`crate::NandError`]; callers
    /// map it to the physical address.
    pub fn decode(&self, stored: &[u8]) -> Result<(Vec<u8>, u64), PageDecodeError> {
        if stored.len() != self.stored_bytes() {
            return Err(PageDecodeError::BadSize {
                got: stored.len(),
                want: self.stored_bytes(),
            });
        }
        let (data_in, rest) = stored.split_at(self.page_bytes);
        let (parities, crc_bytes) = rest.split_at(self.page_bytes / 8);
        let mut data = data_in.to_vec();
        let mut corrected = 0u64;
        for (i, chunk) in data_in.chunks_exact(8).enumerate() {
            match Ecc::decode(le_word(chunk), parities[i]) {
                Decode::Clean(_) => {}
                Decode::Corrected(fixed) => {
                    data[i * 8..i * 8 + 8].copy_from_slice(&fixed.to_le_bytes());
                    corrected += 1;
                }
                Decode::Uncorrectable => return Err(PageDecodeError::Uncorrectable),
            }
        }
        let mut crc_word = [0u8; 4];
        for (dst, src) in crc_word.iter_mut().zip(crc_bytes) {
            *dst = *src;
        }
        let stored_crc = u32::from_le_bytes(crc_word);
        if crc32(&data) != stored_crc {
            return Err(PageDecodeError::CrcMismatch);
        }
        Ok((data, corrected))
    }
}

/// Why a page failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageDecodeError {
    /// Buffer was not one stored page.
    BadSize {
        /// Bytes supplied.
        got: usize,
        /// Bytes required.
        want: usize,
    },
    /// A word had ≥2 bit errors.
    Uncorrectable,
    /// ECC passed but the page CRC disagrees (e.g. parity-byte corruption
    /// pattern beyond the code's guarantee).
    CrcMismatch,
}

impl std::fmt::Display for PageDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageDecodeError::BadSize { got, want } => {
                write!(f, "stored page of {got} bytes, expected {want}")
            }
            PageDecodeError::Uncorrectable => write!(f, "uncorrectable ECC error"),
            PageDecodeError::CrcMismatch => write!(f, "page CRC mismatch"),
        }
    }
}

impl std::error::Error for PageDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_word_roundtrip() {
        for word in [0u64, u64::MAX, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF] {
            let p = Ecc::encode(word);
            assert_eq!(Ecc::decode(word, p), Decode::Clean(word));
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let word = 0xA5A5_5A5A_F00D_CAFEu64;
        let parity = Ecc::encode(word);
        for bit in 0..64 {
            let corrupted = word ^ (1u64 << bit);
            assert_eq!(
                Ecc::decode(corrupted, parity),
                Decode::Corrected(word),
                "data bit {bit}"
            );
        }
        for pbit in 0..8 {
            let bad_parity = parity ^ (1u8 << pbit);
            match Ecc::decode(word, bad_parity) {
                Decode::Corrected(w) => assert_eq!(w, word, "parity bit {pbit}"),
                other => panic!("parity bit {pbit}: {other:?}"),
            }
        }
    }

    #[test]
    fn double_bit_errors_detected_not_miscorrected() {
        let word = 0x1234_5678_9ABC_DEF0u64;
        let parity = Ecc::encode(word);
        let mut detected = 0;
        let mut total = 0;
        for a in 0..64 {
            for b in (a + 1)..64 {
                let corrupted = word ^ (1u64 << a) ^ (1u64 << b);
                total += 1;
                match Ecc::decode(corrupted, parity) {
                    Decode::Uncorrectable => detected += 1,
                    Decode::Corrected(w) => {
                        panic!("double error ({a},{b}) miscorrected to {w:#x}")
                    }
                    Decode::Clean(_) => panic!("double error ({a},{b}) passed as clean"),
                }
            }
        }
        assert_eq!(detected, total, "SEC-DED must detect all double errors");
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 (the canonical check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn page_roundtrip_clean() {
        let codec = PageCodec::new(4096);
        let page: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        let stored = codec.encode(&page).unwrap();
        assert_eq!(stored.len(), 4096 + 512 + 4);
        let (out, corrected) = codec.decode(&stored).unwrap();
        assert_eq!(out, page);
        assert_eq!(corrected, 0);
    }

    #[test]
    fn page_corrects_scattered_single_bit_errors() {
        let codec = PageCodec::new(4096);
        let page = vec![0x3Cu8; 4096];
        let mut stored = codec.encode(&page).unwrap();
        // One bit flip in each of several distinct words.
        for w in [0usize, 17, 99, 511] {
            stored[w * 8 + 3] ^= 0x10;
        }
        let (out, corrected) = codec.decode(&stored).unwrap();
        assert_eq!(out, page);
        assert_eq!(corrected, 4);
    }

    #[test]
    fn page_detects_double_error_in_word() {
        let codec = PageCodec::new(4096);
        let page = vec![0u8; 4096];
        let mut stored = codec.encode(&page).unwrap();
        stored[8] ^= 0x03; // two bits in the same word
        assert_eq!(codec.decode(&stored), Err(PageDecodeError::Uncorrectable));
    }

    #[test]
    fn page_size_validated() {
        let codec = PageCodec::new(4096);
        assert!(codec.encode(&[0u8; 100]).is_err());
        assert!(matches!(
            codec.decode(&[0u8; 100]),
            Err(PageDecodeError::BadSize { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn codec_rejects_unaligned_page() {
        PageCodec::new(1001);
    }
}
