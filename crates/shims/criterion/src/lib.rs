//! Offline stand-in for `criterion`.
//!
//! Implements just enough of the criterion API for the workspace's two
//! bench targets: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing uses `std::time::Instant` and prints
//! a median per-iteration figure; there is no statistical analysis, plots,
//! or baseline comparison. `cargo bench` output stays greppable:
//! `<group>/<name> ... <time>/iter`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\ngroup {}", name.into());
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`].
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!("  {id:<40} {}/iter", format_secs(median));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Times a closure over one sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, timing the batch.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warm-up call, then a small fixed batch per sample: the
        // simulator's benches are heavyweight, so large auto-tuned batches
        // would make `cargo bench` take minutes.
        black_box(f());
        let batch = 3;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench target built from `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u32;
        g.sample_size(2).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn formats_cover_scales() {
        assert!(format_secs(2.0).ends_with('s'));
        assert!(format_secs(2e-3).ends_with("ms"));
        assert!(format_secs(2e-6).ends_with("us"));
        assert!(format_secs(2e-9).ends_with("ns"));
    }
}
