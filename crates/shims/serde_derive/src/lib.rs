//! Inert derive macros for the offline `serde` shim.
//!
//! Both derives accept the usual `#[serde(...)]` helper attributes and
//! expand to nothing: the shim's traits are blanket-implemented, so no
//! generated impl is needed.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
