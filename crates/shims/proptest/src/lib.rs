//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace actually uses: the
//! [`Strategy`](strategy::Strategy) trait with range/tuple/map/union/
//! collection/option strategies, the `proptest!`, `prop_oneof!`,
//! `prop_assert*!` and `prop_assume!` macros, and a deterministic runner.
//!
//! Differences from the real crate, by design:
//!
//! - no shrinking: a failing case reports its inputs (via the assertion
//!   message) but is not minimised;
//! - deterministic seeding: each `(test name, case index)` pair maps to a
//!   fixed RNG seed, so failures always reproduce;
//! - the default case count is 64 (the real default of 256 is overridable
//!   the same way, via `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    (rng.next_u64() % span) as usize
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<T>` (roughly 3/4 `Some`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` to generate `Option` values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Module alias so `prop::collection::vec` / `prop::option::of` resolve as
/// they do with the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// The usual glob-import surface: strategy types, config, macros.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Each test runs `cases` iterations (see
/// [`ProptestConfig`](test_runner::ProptestConfig)); `prop_assume!`
/// rejections re-draw without counting toward the case budget.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut case: u32 = 0;
                let mut runs: u32 = 0;
                let mut rejects: u32 = 0;
                while runs < cfg.cases {
                    assert!(
                        rejects <= cfg.cases.saturating_mul(16).max(1024),
                        "proptest {}: too many prop_assume! rejections",
                        stringify!($name),
                    );
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    case += 1;
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => runs += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => rejects += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case - 1,
                            msg,
                        ),
                    }
                }
            }
        )*
    };
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts inside a property body; failure fails the current case with its
/// inputs reported in the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal (requires `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        )
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+)
    }};
}

/// Asserts two values differ (requires `Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: both sides equal `{:?}` ({} vs {})",
            l,
            stringify!($left),
            stringify!($right)
        )
    }};
}

/// Discards the current case (re-drawn without counting) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
