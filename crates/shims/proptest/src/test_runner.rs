//! Deterministic runner plumbing: config, RNG, and case outcomes.

/// Per-test configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is re-drawn without counting.
    Reject(&'static str),
    /// `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

/// Deterministic per-case RNG (splitmix64 seeded from the test name and
/// case index), so every failure reproduces without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cases_diverge() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(rng.below(37) < 37);
        }
    }
}
