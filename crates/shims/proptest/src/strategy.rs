//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike the real proptest there is no value tree / shrinking: `generate`
/// draws a single concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a non-zero value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping out of sync")
    }
}

/// Strategy for "any value of `T`"; see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The full domain of `T` (primitives only).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..2000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u32..3).generate(&mut rng);
            assert!(w < 3);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn union_honours_weights() {
        let u = Union::new(vec![(9, Just(1u8).boxed()), (1, Just(0u8).boxed())]);
        let mut rng = TestRng::for_case("weights", 0);
        let ones: u32 = (0..1000).map(|_| u32::from(u.generate(&mut rng))).sum();
        assert!(ones > 800, "ones = {ones}");
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u8..4, 0u8..4).prop_map(|(a, b)| (u16::from(a) << 8) | u16::from(b));
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((v >> 8) < 4 && (v & 0xFF) < 4);
        }
    }
}
