//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `serde` cannot be vendored. The simulator only ever uses serde
//! as *annotation* — `#[derive(Serialize, Deserialize)]` on config and
//! report types — and hand-rolls its JSON output (see
//! `nvdimmc-bench::report`). This shim therefore provides:
//!
//! - marker traits [`Serialize`] and [`Deserialize`] with blanket impls,
//!   so bounds like `T: Serialize` stay satisfiable;
//! - inert derive macros (via the sibling `serde_derive` shim) that expand
//!   to nothing.
//!
//! Swapping the real serde back in is a one-line change in the workspace
//! manifest; no source file needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all
/// types; carries no methods.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types; carries no methods and no lifetime parameter (nothing in this
/// workspace deserializes).
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
