//! # nvdimmc-ddr — DDR4 command/timing substrate
//!
//! A command-level model of a DDR4 memory subsystem, built for the NVDIMM-C
//! reproduction. The paper's central mechanism — serialising NVM-controller
//! accesses into the extended refresh cycle (tRFC) of a shared DRAM — is a
//! property of the DDR4 *command protocol*, so this crate models exactly
//! that layer:
//!
//! - [`Command`] — the DDR4 command set (ACT, RD, WR, PRE, PREA, REF, SRE,
//!   SRX, MRS, ZQCL, DES);
//! - [`CaPins`] — pin-level command/address encoding and the decode truth
//!   table (what the NVDIMM-C refresh detector snoops);
//! - [`TimingParams`] / [`SpeedBin`] — JEDEC timing parameters, including
//!   the programmable tRFC/tREFI the paper manipulates;
//! - [`Bank`] / [`DramDevice`] — per-bank state machines with timing
//!   checks, plus a sparse backing store so data integrity is end-to-end
//!   testable;
//! - [`SharedBus`] — a multi-master command bus that *detects* the
//!   collisions of paper Figure 2a and enforces the refresh-window
//!   discipline of Figure 2b;
//! - [`Imc`] — the host integrated memory controller: periodic refresh with
//!   precharge-all, open-page access sequences, and refresh-blocked access
//!   latency (the mechanism behind paper Figures 12–13).
//!
//! # Example
//!
//! ```
//! use nvdimmc_ddr::{Command, CaPins};
//!
//! // The state the NVDIMM-C refresh detector watches for (paper §IV-A):
//! // CKE, ACT_n, WE_n high; CS_n, RAS_n, CAS_n low.
//! let pins = CaPins::encode(&Command::Refresh);
//! assert!(pins.cke && pins.act_n && pins.we_n);
//! assert!(!pins.cs_n && !pins.ras_n && !pins.cas_n);
//! assert_eq!(CaPins::decode(&pins), Some(Command::Refresh));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod bank;
pub mod bus;
pub mod ca;
pub mod command;
pub mod device;
pub mod error;
pub mod imc;
pub mod timing;
pub mod trace;

pub use bank::{Bank, BankState};
pub use bus::{BusMaster, BusStats, SharedBus};
pub use ca::CaPins;
pub use command::{BankAddr, Command};
pub use device::{AddressMapping, DecodedAddr, DramDevice};
pub use error::{BusViolation, DdrError};
pub use imc::{AccessKind, Imc, ImcConfig};
pub use timing::{RefreshMode, SpeedBin, TimingParams};
pub use trace::{TraceEntry, TraceRecorder};
