//! Per-bank state machine with JEDEC timing checks.

use crate::command::Command;
use crate::error::BusViolation;
use crate::timing::TimingParams;
use nvdimmc_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The observable state of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// All rows closed (precharged).
    Idle,
    /// `row` is open in the row buffer.
    Active {
        /// The open row.
        row: u32,
    },
}

/// One DRAM bank: open-row tracking plus the earliest-legal-time bookkeeping
/// for tRCD, tRAS, tRP, tWR and tRTP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    /// Earliest legal ACTIVATE (tRP after precharge, tRFC after refresh).
    earliest_act: SimTime,
    /// Earliest legal READ/WRITE (tRCD after ACTIVATE).
    earliest_rw: SimTime,
    /// Earliest legal PRECHARGE (tRAS after ACT, tWR after write data,
    /// tRTP after read).
    earliest_pre: SimTime,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A precharged, immediately usable bank.
    pub fn new() -> Self {
        Bank {
            state: BankState::Idle,
            earliest_act: SimTime::ZERO,
            earliest_rw: SimTime::ZERO,
            earliest_pre: SimTime::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The row currently open, if any.
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Whether the bank is precharged.
    pub fn is_idle(&self) -> bool {
        self.state == BankState::Idle
    }

    /// Earliest instant an ACTIVATE is legal.
    pub fn earliest_activate(&self) -> SimTime {
        self.earliest_act
    }

    /// Earliest instant a READ/WRITE is legal (once active).
    pub fn earliest_rw(&self) -> SimTime {
        self.earliest_rw
    }

    /// Earliest instant a PRECHARGE is legal.
    pub fn earliest_precharge(&self) -> SimTime {
        self.earliest_pre
    }

    /// Applies an ACTIVATE at `at`.
    ///
    /// # Errors
    ///
    /// Returns a [`BusViolation`] if the bank already has an open row or
    /// tRP has not elapsed.
    pub fn activate(
        &mut self,
        at: SimTime,
        row: u32,
        t: &TimingParams,
        cmd: &Command,
    ) -> Result<(), BusViolation> {
        if let BankState::Active { row: open } = self.state {
            return Err(BusViolation::BankState {
                master: None,
                at,
                command: *cmd,
                reason: format!("ACTIVATE while row {open} is already open"),
            });
        }
        if at < self.earliest_act {
            return Err(BusViolation::Timing {
                master: None,
                at,
                command: *cmd,
                parameter: "tRP",
                legal_at: self.earliest_act,
            });
        }
        self.state = BankState::Active { row };
        self.earliest_rw = at + t.trcd;
        self.earliest_pre = at + t.tras;
        Ok(())
    }

    /// Applies a READ at `at`; returns the instant the last data beat is on
    /// the bus.
    ///
    /// # Errors
    ///
    /// Returns a [`BusViolation`] if the bank is idle or tRCD has not
    /// elapsed.
    pub fn read(
        &mut self,
        at: SimTime,
        t: &TimingParams,
        cmd: &Command,
    ) -> Result<SimTime, BusViolation> {
        self.check_rw(at, cmd)?;
        let data_end = at + t.tcl + t.burst_time();
        self.earliest_pre = self.earliest_pre.max(at + t.trtp);
        Ok(data_end)
    }

    /// Applies a WRITE at `at`; returns the instant the last data beat has
    /// been received.
    ///
    /// # Errors
    ///
    /// Returns a [`BusViolation`] if the bank is idle or tRCD has not
    /// elapsed.
    pub fn write(
        &mut self,
        at: SimTime,
        t: &TimingParams,
        cmd: &Command,
    ) -> Result<SimTime, BusViolation> {
        self.check_rw(at, cmd)?;
        let data_end = at + t.tcwl + t.burst_time();
        // Write recovery starts at the end of the data burst.
        self.earliest_pre = self.earliest_pre.max(data_end + t.twr);
        Ok(data_end)
    }

    fn check_rw(&self, at: SimTime, cmd: &Command) -> Result<(), BusViolation> {
        match self.state {
            BankState::Idle => Err(BusViolation::BankState {
                master: None,
                at,
                command: *cmd,
                // Paper Figure 2a case C2: a column command to a row the
                // other master closed.
                reason: "column command to a precharged bank".to_owned(),
            }),
            BankState::Active { .. } => {
                if at < self.earliest_rw {
                    Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: *cmd,
                        parameter: "tRCD",
                        legal_at: self.earliest_rw,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Applies a PRECHARGE at `at`. Precharging an idle bank is legal
    /// (NOP-like), per JEDEC.
    ///
    /// # Errors
    ///
    /// Returns a [`BusViolation`] if tRAS/tWR/tRTP have not elapsed.
    pub fn precharge(
        &mut self,
        at: SimTime,
        t: &TimingParams,
        cmd: &Command,
    ) -> Result<(), BusViolation> {
        if self.state != BankState::Idle && at < self.earliest_pre {
            return Err(BusViolation::Timing {
                master: None,
                at,
                command: *cmd,
                parameter: "tRAS/tWR/tRTP",
                legal_at: self.earliest_pre,
            });
        }
        self.state = BankState::Idle;
        self.earliest_act = self.earliest_act.max(at + t.trp);
        Ok(())
    }

    /// Blocks the bank until `until` (refresh or self-refresh exit).
    pub fn block_until(&mut self, until: SimTime) {
        self.state = BankState::Idle;
        self.earliest_act = self.earliest_act.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankAddr;
    use crate::timing::SpeedBin;
    use nvdimmc_sim::SimDuration;

    fn t() -> TimingParams {
        TimingParams::jedec(SpeedBin::Ddr4_1600)
    }

    fn act_cmd() -> Command {
        Command::Activate {
            bank: BankAddr::new(0, 0),
            row: 5,
        }
    }

    fn rd_cmd() -> Command {
        Command::Read {
            bank: BankAddr::new(0, 0),
            col: 0,
            auto_precharge: false,
        }
    }

    fn pre_cmd() -> Command {
        Command::Precharge {
            bank: BankAddr::new(0, 0),
        }
    }

    #[test]
    fn activate_then_read_after_trcd() {
        let timing = t();
        let mut b = Bank::new();
        let t0 = SimTime::from_ns(100);
        b.activate(t0, 5, &timing, &act_cmd()).unwrap();
        assert_eq!(b.open_row(), Some(5));
        // Too early: tRCD not satisfied.
        let err = b.read(t0 + SimDuration::from_ns(1), &timing, &rd_cmd());
        assert!(matches!(
            err,
            Err(BusViolation::Timing {
                parameter: "tRCD",
                ..
            })
        ));
        // At tRCD: legal; data lands after tCL + burst.
        let data = b.read(t0 + timing.trcd, &timing, &rd_cmd()).unwrap();
        assert_eq!(data, t0 + timing.trcd + timing.tcl + timing.burst_time());
    }

    #[test]
    fn read_to_idle_bank_is_case_c2() {
        let timing = t();
        let mut b = Bank::new();
        let err = b.read(SimTime::from_ns(10), &timing, &rd_cmd());
        assert!(matches!(err, Err(BusViolation::BankState { .. })));
    }

    #[test]
    fn double_activate_rejected() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(SimTime::ZERO, 1, &timing, &act_cmd()).unwrap();
        let err = b.activate(SimTime::from_us(1), 2, &timing, &act_cmd());
        assert!(matches!(err, Err(BusViolation::BankState { .. })));
    }

    #[test]
    fn precharge_respects_tras() {
        let timing = t();
        let mut b = Bank::new();
        let t0 = SimTime::from_ns(0);
        b.activate(t0, 1, &timing, &act_cmd()).unwrap();
        let err = b.precharge(t0 + SimDuration::from_ns(10), &timing, &pre_cmd());
        assert!(matches!(err, Err(BusViolation::Timing { .. })));
        b.precharge(t0 + timing.tras, &timing, &pre_cmd()).unwrap();
        assert!(b.is_idle());
    }

    #[test]
    fn reactivate_respects_trp() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(SimTime::ZERO, 1, &timing, &act_cmd()).unwrap();
        let pre_at = SimTime::ZERO + timing.tras;
        b.precharge(pre_at, &timing, &pre_cmd()).unwrap();
        let err = b.activate(pre_at, 2, &timing, &act_cmd());
        assert!(matches!(
            err,
            Err(BusViolation::Timing {
                parameter: "tRP",
                ..
            })
        ));
        b.activate(pre_at + timing.trp, 2, &timing, &act_cmd())
            .unwrap();
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(SimTime::ZERO, 1, &timing, &act_cmd()).unwrap();
        let wr_at = SimTime::ZERO + timing.trcd;
        let data_end = b
            .write(
                wr_at,
                &timing,
                &Command::Write {
                    bank: BankAddr::new(0, 0),
                    col: 0,
                    auto_precharge: false,
                },
            )
            .unwrap();
        // Precharge must wait for data burst + tWR even past tRAS.
        assert!(b.earliest_precharge() >= data_end + timing.twr);
    }

    #[test]
    fn precharge_idle_bank_is_nop() {
        let timing = t();
        let mut b = Bank::new();
        b.precharge(SimTime::from_ns(5), &timing, &pre_cmd())
            .unwrap();
        assert!(b.is_idle());
    }

    #[test]
    fn block_until_defers_activation() {
        let timing = t();
        let mut b = Bank::new();
        let until = SimTime::from_us(2);
        b.block_until(until);
        let err = b.activate(SimTime::from_us(1), 0, &timing, &act_cmd());
        assert!(matches!(err, Err(BusViolation::Timing { .. })));
        b.activate(until, 0, &timing, &act_cmd()).unwrap();
    }
}
