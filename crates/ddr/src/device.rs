//! The DRAM device: 16 banks, rank-level constraints (tRRD, tFAW,
//! refresh), address mapping and a sparse backing store.
//!
//! The backing store holds real bytes so the reproduction can validate
//! data integrity end-to-end (the paper's §VII-A aging test and the
//! mixed-load benchmark both rely on comparing data, not just timing).

use crate::bank::Bank;
use crate::command::{BankAddr, Command};
use crate::error::{BusViolation, DdrError};
use crate::timing::TimingParams;
use nvdimmc_sim::SimTime;
use std::collections::{HashMap, VecDeque};

/// How a flat physical byte address maps onto (bank, row, column).
///
/// Cacheline-granular: bits `[5:0]` select the byte within a 64-byte burst,
/// `[12:6]` the column (128 bursts = one 8 KB row), `[16:13]` the bank, and
/// the remaining bits the row. A 4 KB page therefore occupies 64 consecutive
/// columns of a single row — which is what lets the NVMC move a whole page
/// with one ACTIVATE inside one extra-tRFC window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    capacity: u64,
    rows: u32,
}

/// A decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Target bank.
    pub bank: BankAddr,
    /// Row within the bank.
    pub row: u32,
    /// Column in burst (64-byte) units.
    pub col: u16,
    /// Byte offset within the burst.
    pub offset: u8,
}

/// Bytes per DRAM row in this mapping.
pub const ROW_BYTES: u64 = 8 * 1024;
/// Bytes per burst (BL8 on a 64-bit channel).
pub const BURST_BYTES: u64 = 64;
/// Bursts per row.
pub const COLS_PER_ROW: u64 = ROW_BYTES / BURST_BYTES;

impl AddressMapping {
    /// Creates a mapping for a device of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of one full row stripe
    /// (16 banks × 8 KB).
    pub fn new(capacity: u64) -> Self {
        let stripe = ROW_BYTES * u64::from(BankAddr::COUNT);
        assert!(
            capacity > 0 && capacity.is_multiple_of(stripe),
            "capacity must be a multiple of {stripe} bytes"
        );
        AddressMapping {
            capacity,
            rows: (capacity / stripe) as u32,
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of rows per bank.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Decodes a byte address.
    ///
    /// # Errors
    ///
    /// Returns [`DdrError::AddressOutOfRange`] if `addr` exceeds capacity.
    pub fn decode(&self, addr: u64) -> Result<DecodedAddr, DdrError> {
        if addr >= self.capacity {
            return Err(DdrError::AddressOutOfRange {
                addr,
                capacity: self.capacity,
            });
        }
        let offset = (addr & 0x3F) as u8;
        let burst = addr >> 6;
        let col = (burst % COLS_PER_ROW) as u16;
        let bank_idx = ((burst / COLS_PER_ROW) % u64::from(BankAddr::COUNT)) as u8;
        let row = (burst / COLS_PER_ROW / u64::from(BankAddr::COUNT)) as u32;
        Ok(DecodedAddr {
            bank: BankAddr::from_index(bank_idx),
            row,
            col,
            offset,
        })
    }

    /// Re-encodes (bank, row, col) into the flat byte address of the burst.
    pub fn encode(&self, bank: BankAddr, row: u32, col: u16) -> u64 {
        ((u64::from(row) * u64::from(BankAddr::COUNT) + u64::from(bank.index())) * COLS_PER_ROW
            + u64::from(col))
            * BURST_BYTES
    }
}

const FRAME_BYTES: u64 = 4096;

/// Sparse byte-addressable storage in 4 KB frames.
#[derive(Debug, Default)]
struct SparseMem {
    frames: HashMap<u64, Box<[u8; FRAME_BYTES as usize]>>,
}

impl SparseMem {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut pos = 0;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let frame = a / FRAME_BYTES;
            let off = (a % FRAME_BYTES) as usize;
            let n = (FRAME_BYTES as usize - off).min(buf.len() - pos);
            match self.frames.get(&frame) {
                Some(f) => buf[pos..pos + n].copy_from_slice(&f[off..off + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            let a = addr + pos as u64;
            let frame = a / FRAME_BYTES;
            let off = (a % FRAME_BYTES) as usize;
            let n = (FRAME_BYTES as usize - off).min(data.len() - pos);
            let f = self
                .frames
                .entry(frame)
                .or_insert_with(|| Box::new([0u8; FRAME_BYTES as usize]));
            f[off..off + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }
}

/// Counters a [`DramDevice`] maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// ACTIVATE commands accepted.
    pub activates: u64,
    /// READ commands accepted.
    pub reads: u64,
    /// WRITE commands accepted.
    pub writes: u64,
    /// REFRESH commands accepted.
    pub refreshes: u64,
    /// PRECHARGE / PREA commands accepted.
    pub precharges: u64,
}

/// A DDR4 DRAM device (one rank): bank state machines, rank-level timing
/// (tRRD, tFAW, tRFC), and data storage.
///
/// The device enforces *silicon* constraints. Protocol discipline between
/// multiple masters (who may drive the bus when) belongs to
/// [`crate::bus::SharedBus`]. In particular the device accepts commands as
/// soon as its **real** refresh (tRFC_base) completes — that gap between
/// silicon capability and protocol assumption is exactly what NVDIMM-C
/// exploits.
#[derive(Debug)]
pub struct DramDevice {
    timing: TimingParams,
    mapping: AddressMapping,
    banks: Vec<Bank>,
    mem: SparseMem,
    /// Earliest next ACT per bank-group for tRRD_L, and global for tRRD_S.
    earliest_act_same_group: Vec<SimTime>,
    earliest_act_any: SimTime,
    /// Sliding window of recent ACT times for the four-activate window.
    recent_acts: VecDeque<SimTime>,
    /// End of the current *device* refresh (tRFC_base after REF).
    refresh_busy_until: SimTime,
    /// Whether the device is in self-refresh.
    in_self_refresh: bool,
    /// Earliest command after self-refresh exit (tXS).
    earliest_after_srx: SimTime,
    /// Column-command spacing (tCCD).
    earliest_col_cmd: SimTime,
    /// Earliest READ after the last WRITE's data burst (rank-wide tWTR).
    earliest_read_after_write: SimTime,
    /// Earliest WRITE after the last READ: the write's DQ burst (tCWL
    /// after issue) must not start before the read's burst leaves the
    /// pins (read-to-write turnaround).
    earliest_write_after_read: SimTime,
    stats: DeviceStats,
}

impl DramDevice {
    /// Creates a device of `capacity` bytes with the given timing.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of the 16-bank row stripe.
    pub fn new(timing: TimingParams, capacity: u64) -> Self {
        let mapping = AddressMapping::new(capacity);
        DramDevice {
            timing,
            mapping,
            banks: (0..BankAddr::COUNT).map(|_| Bank::new()).collect(),
            mem: SparseMem::default(),
            earliest_act_same_group: vec![SimTime::ZERO; usize::from(BankAddr::GROUPS)],
            earliest_act_any: SimTime::ZERO,
            recent_acts: VecDeque::new(),
            refresh_busy_until: SimTime::ZERO,
            in_self_refresh: false,
            earliest_after_srx: SimTime::ZERO,
            earliest_col_cmd: SimTime::ZERO,
            earliest_read_after_write: SimTime::ZERO,
            earliest_write_after_read: SimTime::ZERO,
            stats: DeviceStats::default(),
        }
    }

    /// The device's timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Reprograms timing (the paper adjusts tRFC/tREFI via BIOS / iMC
    /// registers at boot).
    pub fn set_timing(&mut self, timing: TimingParams) {
        self.timing = timing;
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Command counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Whether every bank is precharged.
    pub fn all_banks_idle(&self) -> bool {
        self.banks.iter().all(Bank::is_idle)
    }

    /// The bank state machine for `bank`.
    pub fn bank(&self, bank: BankAddr) -> &Bank {
        &self.banks[usize::from(bank.index())]
    }

    /// End of the current device-level refresh (tRFC_base after the last
    /// REF), i.e. when the silicon could accept commands again.
    pub fn refresh_busy_until(&self) -> SimTime {
        self.refresh_busy_until
    }

    fn check_not_refreshing(&self, at: SimTime, cmd: &Command) -> Result<(), BusViolation> {
        if at < self.refresh_busy_until {
            return Err(BusViolation::CommandDuringRefresh {
                master: None,
                at,
                busy_until: self.refresh_busy_until,
                command: *cmd,
            });
        }
        if self.in_self_refresh {
            return Err(BusViolation::BankState {
                master: None,
                at,
                command: *cmd,
                reason: "device is in self-refresh".to_owned(),
            });
        }
        if at < self.earliest_after_srx {
            return Err(BusViolation::Timing {
                master: None,
                at,
                command: *cmd,
                parameter: "tXS",
                legal_at: self.earliest_after_srx,
            });
        }
        Ok(())
    }

    /// Issues a command to the device at `at`. For READ/WRITE the returned
    /// instant is when the data burst completes; for other commands it is
    /// when the command's blocking effect ends.
    ///
    /// # Errors
    ///
    /// Returns a [`BusViolation`] on any silicon-level timing or state
    /// violation.
    pub fn issue(&mut self, at: SimTime, cmd: Command) -> Result<SimTime, BusViolation> {
        match cmd {
            Command::Deselect => Ok(at),
            Command::Activate { bank, row } => {
                self.check_not_refreshing(at, &cmd)?;
                if row >= self.mapping.rows() {
                    return Err(BusViolation::BankState {
                        master: None,
                        at,
                        command: cmd,
                        reason: format!("row {row} beyond device ({} rows)", self.mapping.rows()),
                    });
                }
                // Rank-level ACT spacing.
                let group = usize::from(bank.group);
                if at < self.earliest_act_any {
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tRRD_S",
                        legal_at: self.earliest_act_any,
                    });
                }
                if at < self.earliest_act_same_group[group] {
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tRRD_L",
                        legal_at: self.earliest_act_same_group[group],
                    });
                }
                // Four-activate window.
                while let Some(&front) = self.recent_acts.front() {
                    if at.saturating_since(front) >= self.timing.tfaw {
                        self.recent_acts.pop_front();
                    } else {
                        break;
                    }
                }
                if self.recent_acts.len() >= 4 {
                    let oldest = self.recent_acts.front().copied().unwrap_or(at);
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tFAW",
                        legal_at: oldest + self.timing.tfaw,
                    });
                }
                self.banks[usize::from(bank.index())].activate(at, row, &self.timing, &cmd)?;
                self.recent_acts.push_back(at);
                self.earliest_act_any = at + self.timing.trrd_s;
                self.earliest_act_same_group[group] = at + self.timing.trrd_l;
                self.stats.activates += 1;
                Ok(at + self.timing.trcd)
            }
            Command::Read { bank, .. } => {
                self.check_not_refreshing(at, &cmd)?;
                if at < self.earliest_col_cmd {
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tCCD",
                        legal_at: self.earliest_col_cmd,
                    });
                }
                if at < self.earliest_read_after_write {
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tWTR",
                        legal_at: self.earliest_read_after_write,
                    });
                }
                let end = self.banks[usize::from(bank.index())].read(at, &self.timing, &cmd)?;
                self.earliest_col_cmd = at + self.timing.tccd_l;
                // A later WRITE drives DQ tCWL after issue; keep it off the
                // pins until this read's burst has left them.
                self.earliest_write_after_read =
                    self.earliest_write_after_read.max(end - self.timing.tcwl);
                self.stats.reads += 1;
                self.auto_precharge_if_requested(&cmd, end);
                Ok(end)
            }
            Command::Write { bank, .. } => {
                self.check_not_refreshing(at, &cmd)?;
                if at < self.earliest_col_cmd {
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tCCD",
                        legal_at: self.earliest_col_cmd,
                    });
                }
                if at < self.earliest_write_after_read {
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tRTW",
                        legal_at: self.earliest_write_after_read,
                    });
                }
                let end = self.banks[usize::from(bank.index())].write(at, &self.timing, &cmd)?;
                self.earliest_col_cmd = at + self.timing.tccd_l;
                self.earliest_read_after_write = end + self.timing.twtr;
                self.stats.writes += 1;
                self.auto_precharge_if_requested(&cmd, end);
                Ok(end)
            }
            Command::Precharge { bank } => {
                self.check_not_refreshing(at, &cmd)?;
                self.banks[usize::from(bank.index())].precharge(at, &self.timing, &cmd)?;
                self.stats.precharges += 1;
                Ok(at + self.timing.trp)
            }
            Command::PrechargeAll => {
                self.check_not_refreshing(at, &cmd)?;
                // Validate all banks first so a failure leaves state intact.
                for b in &self.banks {
                    if !b.is_idle() && at < b.earliest_precharge() {
                        return Err(BusViolation::Timing {
                            master: None,
                            at,
                            command: cmd,
                            parameter: "tRAS/tWR/tRTP",
                            legal_at: b.earliest_precharge(),
                        });
                    }
                }
                for b in &mut self.banks {
                    b.precharge(at, &self.timing, &cmd)?;
                }
                self.stats.precharges += 1;
                Ok(at + self.timing.trp)
            }
            Command::Refresh => {
                self.check_not_refreshing(at, &cmd)?;
                if let Some(open) = self.banks.iter().find(|b| !b.is_idle()) {
                    return Err(BusViolation::BankState {
                        master: None,
                        at,
                        command: cmd,
                        reason: format!(
                            "REFRESH with row {:?} open (PREA required first)",
                            open.open_row()
                        ),
                    });
                }
                // All banks must also satisfy tRP.
                for b in &self.banks {
                    if at < b.earliest_activate() {
                        return Err(BusViolation::Timing {
                            master: None,
                            at,
                            command: cmd,
                            parameter: "tRP",
                            legal_at: b.earliest_activate(),
                        });
                    }
                }
                // The silicon is busy for tRFC_base only; the *protocol*
                // window extends to tRFC_total, enforced by the bus.
                self.refresh_busy_until = at + self.timing.trfc_base;
                for b in &mut self.banks {
                    b.block_until(self.refresh_busy_until);
                }
                self.stats.refreshes += 1;
                Ok(self.refresh_busy_until)
            }
            Command::RefreshBank { bank, .. } => {
                self.check_not_refreshing(at, &cmd)?;
                let b = &self.banks[usize::from(bank.index())];
                if !b.is_idle() {
                    return Err(BusViolation::BankState {
                        master: None,
                        at,
                        command: cmd,
                        reason: format!(
                            "per-bank REFRESH to {bank} with row {:?} open (PRE required first)",
                            b.open_row()
                        ),
                    });
                }
                if at < b.earliest_activate() {
                    return Err(BusViolation::Timing {
                        master: None,
                        at,
                        command: cmd,
                        parameter: "tRP",
                        legal_at: b.earliest_activate(),
                    });
                }
                // Only the target bank is busy (tRFCpb); the other fifteen
                // keep serving — the whole point of refresh-access
                // parallelism. The rank-wide refresh_busy_until is
                // untouched.
                let ready = self.timing.refresh_silicon_ready_pb(at);
                self.banks[usize::from(bank.index())].block_until(ready);
                self.stats.refreshes += 1;
                Ok(ready)
            }
            Command::SelfRefreshEnter => {
                self.check_not_refreshing(at, &cmd)?;
                if !self.all_banks_idle() {
                    return Err(BusViolation::BankState {
                        master: None,
                        at,
                        command: cmd,
                        reason: "SRE with open banks".to_owned(),
                    });
                }
                self.in_self_refresh = true;
                Ok(at)
            }
            Command::SelfRefreshExit => {
                if !self.in_self_refresh {
                    return Err(BusViolation::BankState {
                        master: None,
                        at,
                        command: cmd,
                        reason: "SRX while not in self-refresh".to_owned(),
                    });
                }
                self.in_self_refresh = false;
                self.earliest_after_srx = at + self.timing.txs;
                Ok(self.earliest_after_srx)
            }
            Command::ModeRegisterSet { .. } | Command::ZqCalibration => {
                self.check_not_refreshing(at, &cmd)?;
                Ok(at)
            }
        }
    }

    fn auto_precharge_if_requested(&mut self, cmd: &Command, data_end: SimTime) {
        let (Command::Read {
            bank,
            auto_precharge: ap,
            ..
        }
        | Command::Write {
            bank,
            auto_precharge: ap,
            ..
        }) = *cmd
        else {
            return;
        };
        if ap {
            let b = &mut self.banks[usize::from(bank.index())];
            // Model auto-precharge as an internal precharge at the legal
            // instant after the burst.
            let when = b.earliest_precharge().max(data_end);
            b.block_until(when + self.timing.trp);
        }
    }

    /// Reads the 64-byte burst for the open row of `bank` at `col`.
    ///
    /// # Panics
    ///
    /// Panics if the bank has no open row — issue the commands through
    /// [`DramDevice::issue`] first, which returns errors instead.
    #[allow(clippy::expect_used)] // documented contract: open row required
    pub fn burst_read(&mut self, bank: BankAddr, col: u16) -> [u8; 64] {
        let row = self
            .bank(bank)
            .open_row()
            .expect("burst_read requires an open row");
        let addr = self.mapping.encode(bank, row, col);
        let mut buf = [0u8; 64];
        self.mem.read(addr, &mut buf);
        buf
    }

    /// Writes the 64-byte burst for the open row of `bank` at `col`.
    ///
    /// # Panics
    ///
    /// Panics if the bank has no open row.
    #[allow(clippy::expect_used)] // documented contract: open row required
    pub fn burst_write(&mut self, bank: BankAddr, col: u16, data: &[u8; 64]) {
        let row = self
            .bank(bank)
            .open_row()
            .expect("burst_write requires an open row");
        let addr = self.mapping.encode(bank, row, col);
        self.mem.write(addr, data);
    }

    /// Direct backdoor read of the array (no timing) — used by test
    /// oracles and the power-failure flush path, never by the normal
    /// simulation flow.
    pub fn peek(&self, addr: u64, buf: &mut [u8]) -> Result<(), DdrError> {
        if addr + buf.len() as u64 > self.mapping.capacity() {
            return Err(DdrError::AddressOutOfRange {
                addr,
                capacity: self.mapping.capacity(),
            });
        }
        self.mem.read(addr, buf);
        Ok(())
    }

    /// Direct backdoor write of the array (no timing).
    pub fn poke(&mut self, addr: u64, data: &[u8]) -> Result<(), DdrError> {
        if addr + data.len() as u64 > self.mapping.capacity() {
            return Err(DdrError::AddressOutOfRange {
                addr,
                capacity: self.mapping.capacity(),
            });
        }
        self.mem.write(addr, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::SpeedBin;
    use nvdimmc_sim::SimDuration;

    const CAP: u64 = 256 * 1024 * 1024;

    fn dev() -> DramDevice {
        DramDevice::new(TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600), CAP)
    }

    #[test]
    fn mapping_roundtrip() {
        let m = AddressMapping::new(CAP);
        for addr in [0u64, 64, 4096, 8192, 1 << 20, CAP - 64] {
            let d = m.decode(addr).unwrap();
            assert_eq!(m.encode(d.bank, d.row, d.col) + u64::from(d.offset), addr);
        }
    }

    #[test]
    fn mapping_keeps_page_in_one_row() {
        let m = AddressMapping::new(CAP);
        let base = 12 * 4096;
        let first = m.decode(base).unwrap();
        for off in (0..4096).step_by(64) {
            let d = m.decode(base + off).unwrap();
            assert_eq!(d.bank, first.bank, "page split across banks");
            assert_eq!(d.row, first.row, "page split across rows");
        }
    }

    #[test]
    fn mapping_rejects_out_of_range() {
        let m = AddressMapping::new(CAP);
        assert!(m.decode(CAP).is_err());
    }

    #[test]
    fn act_read_data_roundtrip() {
        let mut d = dev();
        let m = *d.mapping();
        let addr = 64 * 999;
        let dec = m.decode(addr).unwrap();
        let t0 = SimTime::from_ns(100);
        d.issue(
            t0,
            Command::Activate {
                bank: dec.bank,
                row: dec.row,
            },
        )
        .unwrap();
        let wr_at = t0 + d.timing().trcd;
        d.issue(
            wr_at,
            Command::Write {
                bank: dec.bank,
                col: dec.col,
                auto_precharge: false,
            },
        )
        .unwrap();
        let data = [0xCDu8; 64];
        d.burst_write(dec.bank, dec.col, &data);
        // A read one tCCD after the write violates the write-to-read
        // turnaround; it becomes legal once tWTR elapses after the burst.
        let t = *d.timing();
        let early = wr_at + t.tccd_l;
        let rd_cmd = Command::Read {
            bank: dec.bank,
            col: dec.col,
            auto_precharge: false,
        };
        let err = d.issue(early, rd_cmd);
        assert!(
            matches!(
                err,
                Err(BusViolation::Timing {
                    parameter: "tWTR",
                    ..
                })
            ),
            "{err:?}"
        );
        let rd_at = wr_at + t.tcwl + t.burst_time() + t.twtr;
        d.issue(rd_at, rd_cmd).unwrap();
        assert_eq!(d.burst_read(dec.bank, dec.col), data);
    }

    #[test]
    fn refresh_requires_all_banks_precharged() {
        let mut d = dev();
        d.issue(
            SimTime::ZERO,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 3,
            },
        )
        .unwrap();
        let err = d.issue(SimTime::from_us(1), Command::Refresh);
        assert!(matches!(err, Err(BusViolation::BankState { .. })));
    }

    #[test]
    fn refresh_blocks_silicon_for_trfc_base() {
        let mut d = dev();
        let t0 = SimTime::from_us(10);
        let done = d.issue(t0, Command::Refresh).unwrap();
        assert_eq!(done, t0 + d.timing().trfc_base);
        // Any command before tRFC_base is a silicon violation.
        let err = d.issue(
            t0 + SimDuration::from_ns(100),
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        );
        assert!(matches!(
            err,
            Err(BusViolation::CommandDuringRefresh { .. })
        ));
        // After tRFC_base the silicon accepts commands again even though
        // the programmed tRFC_total is longer: the NVDIMM-C opportunity.
        d.issue(
            done,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        )
        .unwrap();
    }

    #[test]
    fn per_bank_refresh_blocks_only_its_bank() {
        let mut d = dev();
        let t0 = SimTime::from_us(10);
        let target = BankAddr::new(1, 2);
        let other = BankAddr::new(0, 0);
        let done = d
            .issue(
                t0,
                Command::RefreshBank {
                    bank: target,
                    stretch: 3,
                },
            )
            .unwrap();
        assert_eq!(done, t0 + d.timing().trfc_pb);
        // The refreshing bank rejects an ACT before tRFCpb elapses...
        let err = d.issue(
            t0 + SimDuration::from_ns(10),
            Command::Activate {
                bank: target,
                row: 0,
            },
        );
        assert!(
            matches!(
                err,
                Err(BusViolation::Timing {
                    parameter: "tRP",
                    ..
                })
            ),
            "{err:?}"
        );
        // ...while every other bank keeps serving immediately.
        d.issue(
            t0 + SimDuration::from_ns(10),
            Command::Activate {
                bank: other,
                row: 0,
            },
        )
        .unwrap();
        // Rank-wide refresh busy is untouched.
        assert!(d.refresh_busy_until() < t0);
    }

    #[test]
    fn per_bank_refresh_requires_its_bank_precharged() {
        let mut d = dev();
        let b = BankAddr::new(2, 2);
        d.issue(SimTime::ZERO, Command::Activate { bank: b, row: 1 })
            .unwrap();
        let err = d.issue(
            SimTime::from_us(1),
            Command::RefreshBank {
                bank: b,
                stretch: 0,
            },
        );
        assert!(matches!(err, Err(BusViolation::BankState { .. })));
        // A different bank being open does not gate it.
        let err2 = d.issue(
            SimTime::from_us(1),
            Command::RefreshBank {
                bank: BankAddr::new(0, 1),
                stretch: 0,
            },
        );
        assert!(err2.is_ok(), "{err2:?}");
    }

    #[test]
    fn tfaw_limits_activation_rate() {
        let mut d = dev();
        let t = *d.timing();
        let mut at = SimTime::from_ns(1000);
        // Four ACTs spaced at tRRD_S (different groups) are legal...
        for i in 0..4u8 {
            d.issue(
                at,
                Command::Activate {
                    bank: BankAddr::new(i % 4, 0),
                    row: 0,
                },
            )
            .unwrap();
            at += t.trrd_s;
        }
        // ...a fifth within tFAW is not.
        let err = d.issue(
            at,
            Command::Activate {
                bank: BankAddr::new(0, 1),
                row: 0,
            },
        );
        assert!(matches!(
            err,
            Err(BusViolation::Timing {
                parameter: "tFAW",
                ..
            })
        ));
    }

    #[test]
    fn self_refresh_entry_and_exit() {
        let mut d = dev();
        d.issue(SimTime::from_ns(10), Command::SelfRefreshEnter)
            .unwrap();
        let err = d.issue(SimTime::from_ns(20), Command::Refresh);
        assert!(matches!(err, Err(BusViolation::BankState { .. })));
        let t_exit = SimTime::from_us(5);
        let ready = d.issue(t_exit, Command::SelfRefreshExit).unwrap();
        assert_eq!(ready, t_exit + d.timing().txs);
        let err = d.issue(
            t_exit + SimDuration::from_ns(1),
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        );
        assert!(matches!(
            err,
            Err(BusViolation::Timing {
                parameter: "tXS",
                ..
            })
        ));
    }

    #[test]
    fn auto_precharge_closes_bank() {
        let mut d = dev();
        let t0 = SimTime::from_ns(100);
        let b = BankAddr::new(1, 1);
        d.issue(t0, Command::Activate { bank: b, row: 7 }).unwrap();
        d.issue(
            t0 + d.timing().trcd,
            Command::Read {
                bank: b,
                col: 0,
                auto_precharge: true,
            },
        )
        .unwrap();
        assert!(d.bank(b).is_idle());
    }

    #[test]
    fn peek_poke_backdoor() {
        let mut d = dev();
        d.poke(4096, &[7u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        d.peek(4096, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        assert!(d.poke(CAP - 32, &[0u8; 64]).is_err());
    }

    #[test]
    fn stats_count_commands() {
        let mut d = dev();
        let b = BankAddr::new(0, 0);
        d.issue(SimTime::from_ns(10), Command::Activate { bank: b, row: 0 })
            .unwrap();
        d.issue(
            SimTime::from_ns(10) + d.timing().trcd,
            Command::Read {
                bank: b,
                col: 0,
                auto_precharge: false,
            },
        )
        .unwrap();
        let s = d.stats();
        assert_eq!((s.activates, s.reads), (1, 1));
    }
}
