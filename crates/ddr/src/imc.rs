//! The host integrated memory controller (iMC).
//!
//! Models exactly what the paper relies on from the Skylake iMC:
//!
//! - periodic REFRESH at tREFI, preceded by PRECHARGE-ALL (stock DDR4 has
//!   no per-bank refresh, §III-B), with the programmed — possibly
//!   stretched — tRFC honoured before any further command;
//! - open-page row-buffer policy with per-bank open-row tracking;
//! - pipelined column accesses at tCCD spacing for streaming transfers.
//!
//! The iMC *postpones* refresh while a command sequence is in flight and
//! catches up at the next pump point, as real controllers do (JEDEC allows
//! up to 8 postponed refreshes).
//!
//! In [`RefreshMode::PerBank`] the controller instead issues one REFpb
//! every tREFI/16 — same total refresh duty, one bank at a time — and
//! never blocks rank-wide: only commands into the refreshing bank stall.
//! The bank order is steered by an external preference (the shard's
//! refresh planner asks for the bank the NVMC most wants, with a stretch
//! level sized from queue depth) but a deferral counter forces any bank
//! that has waited [`Imc::PB_FORCE_LIMIT`] ticks, so out-of-order
//! placement can never starve a bank past its tREFI budget.

use crate::bus::{BusMaster, SharedBus};
use crate::command::{BankAddr, Command};
use crate::device::DecodedAddr;
use crate::error::BusViolation;
use crate::timing::{RefreshMode, TimingParams};
use nvdimmc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load / READ burst.
    Read,
    /// A store / WRITE burst.
    Write,
}

/// iMC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImcConfig {
    /// Refresh interval; defaults to the timing's tREFI.
    pub trefi: SimDuration,
    /// Upper bound on retry iterations when a command must be delayed to a
    /// later legal instant.
    pub max_retries: u32,
    /// Rank-level REF (stock DDR4) or per-bank REFpb windows.
    pub mode: RefreshMode,
}

impl ImcConfig {
    /// Configuration matching `timing`, in rank-level mode.
    pub fn from_timing(timing: &TimingParams) -> Self {
        ImcConfig {
            trefi: timing.trefi,
            max_retries: 16,
            mode: RefreshMode::RankLevel,
        }
    }
}

/// iMC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImcStats {
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Column accesses that required (PRE+)ACT.
    pub row_misses: u64,
    /// REFRESH commands issued.
    pub refreshes: u64,
    /// Refreshes elided because the clock jumped past them during pure
    /// CPU activity (JEDEC allows postponing at most 8; older ones are
    /// treated as having completed in the untracked interval).
    pub refreshes_elided: u64,
    /// Bytes read over the bus.
    pub bytes_read: u64,
    /// Bytes written over the bus.
    pub bytes_written: u64,
    /// Total time host commands spent waiting out programmed-tRFC blocks.
    pub refresh_stall: SimDuration,
}

/// The outcome of a single cacheline access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// When the column command was issued.
    pub issued_at: SimTime,
    /// When the data burst completed.
    pub data_end: SimTime,
}

/// The host memory controller.
///
/// Holds only *its own view* of the DRAM (open rows, refresh schedule); the
/// DRAM itself lives behind the [`SharedBus`], because the NVMC sees the
/// same device.
#[derive(Debug)]
pub struct Imc {
    cfg: ImcConfig,
    next_refresh: SimTime,
    open_rows: Vec<Option<u32>>,
    /// Per-bank mode: the bank (and stretch) the refresh planner would
    /// like refreshed next, set by [`Imc::set_refresh_pref`].
    pb_pref: Option<(BankAddr, u8)>,
    /// Per-bank mode: ticks each bank has waited since its own REFpb.
    pb_deferral: [u32; BankAddr::COUNT as usize],
    stats: ImcStats,
}

impl Imc {
    /// Per-bank mode: a bank that has waited this many REFpb ticks is
    /// refreshed next regardless of the planner's preference (1.5 × the
    /// 16-bank round-robin period — well inside the checker's starvation
    /// budget).
    pub const PB_FORCE_LIMIT: u32 = 24;

    /// Creates an iMC with the first refresh due one tick in.
    pub fn new(cfg: ImcConfig) -> Self {
        let mut imc = Imc {
            next_refresh: SimTime::ZERO,
            cfg,
            open_rows: vec![None; 16],
            pb_pref: None,
            pb_deferral: [0; BankAddr::COUNT as usize],
            stats: ImcStats::default(),
        };
        imc.next_refresh = SimTime::ZERO + imc.tick();
        imc
    }

    /// Counters.
    pub fn stats(&self) -> ImcStats {
        self.stats
    }

    /// The configured refresh interval.
    pub fn trefi(&self) -> SimDuration {
        self.cfg.trefi
    }

    /// The refresh pump cadence: tREFI between rank REFs, tREFI/16
    /// between per-bank REFpbs (same total duty).
    fn tick(&self) -> SimDuration {
        match self.cfg.mode {
            RefreshMode::RankLevel => self.cfg.trefi,
            RefreshMode::PerBank => self.cfg.trefi / u64::from(BankAddr::COUNT),
        }
    }

    /// Changes the refresh interval (the paper's tREFI2/tREFI4 studies).
    ///
    /// # Panics
    ///
    /// Panics if `trefi` is zero.
    pub fn set_trefi(&mut self, trefi: SimDuration) {
        assert!(trefi > SimDuration::ZERO, "tREFI must be positive");
        self.cfg.trefi = trefi;
    }

    /// The active refresh mode.
    pub fn refresh_mode(&self) -> RefreshMode {
        self.cfg.mode
    }

    /// Switches refresh mode, re-anchoring the first due tick. Intended
    /// for assembly time, before any traffic.
    pub fn set_refresh_mode(&mut self, mode: RefreshMode) {
        self.cfg.mode = mode;
        self.next_refresh = SimTime::ZERO + self.tick();
    }

    /// Per-bank mode: tells the controller which bank the refresh planner
    /// wants refreshed next, and how far to stretch its window. `None`
    /// falls back to least-recently-refreshed order.
    pub fn set_refresh_pref(&mut self, pref: Option<(BankAddr, u8)>) {
        self.pb_pref = pref;
    }

    /// When the next refresh is due.
    pub fn next_refresh_due(&self) -> SimTime {
        self.next_refresh
    }

    /// Issues a host command, retrying at the violation-reported legal
    /// instant for ordinary timing delays (tCCD, tRAS, tRP, refresh
    /// blocks). Hard protocol errors propagate.
    fn issue_retry(
        &mut self,
        bus: &mut SharedBus,
        mut at: SimTime,
        cmd: Command,
    ) -> Result<(SimTime, SimTime), BusViolation> {
        for _ in 0..=self.cfg.max_retries {
            match bus.issue(BusMaster::HostImc, at, cmd) {
                Ok(end) => return Ok((at, end)),
                Err(BusViolation::Timing { legal_at, .. }) => at = at.max(legal_at),
                Err(BusViolation::CommandDuringRefresh { busy_until, .. }) => {
                    self.stats.refresh_stall += busy_until.since(at);
                    at = busy_until;
                }
                Err(other) => return Err(other),
            }
        }
        Err(BusViolation::Timing {
            master: Some(BusMaster::HostImc),
            at,
            command: cmd,
            parameter: "retry-budget",
            legal_at: at,
        })
    }

    /// Issues any refreshes due at or before `now`; returns the instant the
    /// host may proceed (which may be later than `now` if a refresh window
    /// covers it).
    ///
    /// # Errors
    ///
    /// Propagates bus violations (none are expected from a well-behaved
    /// host; surfacing them is the point of the model).
    pub fn pump_refresh(
        &mut self,
        bus: &mut SharedBus,
        mut now: SimTime,
    ) -> Result<SimTime, BusViolation> {
        // JEDEC permits postponing up to 8 refreshes. If the clock jumped
        // further than that during bus-idle CPU work, the missed refreshes
        // are deemed to have completed in that interval (they would have —
        // the bus was idle); only the allowed backlog is issued live.
        let tick = self.tick();
        let cap = self.cfg.trefi * 8;
        let horizon = now.saturating_since(self.next_refresh);
        if horizon > cap {
            let missed = (horizon - cap).div_ceil(tick);
            self.stats.refreshes_elided += missed;
            self.next_refresh += tick * missed;
        }
        if self.cfg.mode == RefreshMode::PerBank {
            return self.pump_refresh_pb(bus, now);
        }
        while self.next_refresh <= now {
            let due = self.next_refresh;
            // Precharge all banks, then refresh once tRP has elapsed. A
            // refresh that fell due during bus-idle CPU work is issued
            // retroactively at its due time — it really did happen then —
            // so it only stalls the host when it overlaps bus activity.
            let (prea_at, _) = self.issue_retry(bus, due, Command::PrechargeAll)?;
            let trp = bus.device().timing().trp;
            let (ref_at, _) = self.issue_retry(bus, prea_at + trp, Command::Refresh)?;
            self.open_rows.fill(None);
            self.stats.refreshes += 1;
            self.next_refresh = due + self.cfg.trefi;
            // Host is blocked for the programmed tRFC.
            let resume = bus.host_ready_at(ref_at);
            if resume > now {
                self.stats.refresh_stall += resume.since(now.max(ref_at));
                now = resume;
            }
        }
        Ok(now)
    }

    /// Per-bank refresh pump: one REFpb per tREFI/16 tick. The host is
    /// never blocked rank-wide — an access into the refreshing bank stalls
    /// via the ordinary retry path, every other bank keeps flowing.
    fn pump_refresh_pb(
        &mut self,
        bus: &mut SharedBus,
        now: SimTime,
    ) -> Result<SimTime, BusViolation> {
        let tick = self.tick();
        while self.next_refresh <= now {
            let due = self.next_refresh;
            let (bank, stretch) = self.choose_pb_bank();
            let idx = usize::from(bank.index());
            // Only the target bank needs precharging (the point of REFpb).
            let mut at = due;
            if self.open_rows[idx].is_some() {
                let (pre_at, _) = self.issue_retry(bus, at, Command::Precharge { bank })?;
                at = pre_at + bus.device().timing().trp;
            }
            self.issue_retry(bus, at, Command::RefreshBank { bank, stretch })?;
            self.open_rows[idx] = None;
            for d in &mut self.pb_deferral {
                *d += 1;
            }
            self.pb_deferral[idx] = 0;
            self.stats.refreshes += 1;
            self.next_refresh = due + tick;
        }
        Ok(now)
    }

    /// Picks the bank for the next REFpb: any bank past the forcing limit
    /// wins (most-starved first), otherwise the planner's preference,
    /// otherwise least-recently-refreshed.
    fn choose_pb_bank(&self) -> (BankAddr, u8) {
        let most_starved = (0..BankAddr::COUNT)
            .max_by_key(|&i| self.pb_deferral[usize::from(i)])
            .unwrap_or(0);
        if self.pb_deferral[usize::from(most_starved)] >= Self::PB_FORCE_LIMIT {
            return (BankAddr::from_index(most_starved), 0);
        }
        if let Some((bank, stretch)) = self.pb_pref {
            return (bank, stretch);
        }
        (BankAddr::from_index(most_starved), 0)
    }

    /// Performs one 64-byte access at `addr`, including any row
    /// activation, returning issue and completion instants.
    ///
    /// # Errors
    ///
    /// Propagates bus violations and address decode failures (as
    /// [`BusViolation::BankState`]).
    pub fn access(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        addr: u64,
        kind: AccessKind,
    ) -> Result<AccessResult, BusViolation> {
        let at = self.pump_refresh(bus, at)?;
        let dec = Self::decode(bus, at, addr)?;
        let col_at = self.open_row(bus, at, &dec)?;
        self.column_access(bus, col_at, &dec, kind)
    }

    fn decode(bus: &SharedBus, at: SimTime, addr: u64) -> Result<DecodedAddr, BusViolation> {
        bus.device()
            .mapping()
            .decode(addr)
            .map_err(|e| BusViolation::BankState {
                master: Some(BusMaster::HostImc),
                at,
                command: Command::Deselect,
                reason: e.to_string(),
            })
    }

    /// Ensures `dec.row` is open in `dec.bank`; returns the earliest
    /// instant a column command may issue.
    fn open_row(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        dec: &DecodedAddr,
    ) -> Result<SimTime, BusViolation> {
        let idx = usize::from(dec.bank.index());
        match self.open_rows[idx] {
            Some(row) if row == dec.row => {
                self.stats.row_hits += 1;
                Ok(at)
            }
            Some(_) => {
                self.stats.row_misses += 1;
                let (pre_at, _) =
                    self.issue_retry(bus, at, Command::Precharge { bank: dec.bank })?;
                let trp = bus.device().timing().trp;
                let (act_at, rw_ready) = self.issue_retry(
                    bus,
                    pre_at + trp,
                    Command::Activate {
                        bank: dec.bank,
                        row: dec.row,
                    },
                )?;
                let _ = act_at;
                self.open_rows[idx] = Some(dec.row);
                Ok(rw_ready)
            }
            None => {
                self.stats.row_misses += 1;
                let (_, rw_ready) = self.issue_retry(
                    bus,
                    at,
                    Command::Activate {
                        bank: dec.bank,
                        row: dec.row,
                    },
                )?;
                self.open_rows[idx] = Some(dec.row);
                Ok(rw_ready)
            }
        }
    }

    fn column_access(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        dec: &DecodedAddr,
        kind: AccessKind,
    ) -> Result<AccessResult, BusViolation> {
        let cmd = match kind {
            AccessKind::Read => Command::Read {
                bank: dec.bank,
                col: dec.col,
                auto_precharge: false,
            },
            AccessKind::Write => Command::Write {
                bank: dec.bank,
                col: dec.col,
                auto_precharge: false,
            },
        };
        let (issued_at, data_end) = self.issue_retry(bus, at, cmd)?;
        match kind {
            AccessKind::Read => self.stats.bytes_read += 64,
            AccessKind::Write => self.stats.bytes_written += 64,
        }
        Ok(AccessResult {
            issued_at,
            data_end,
        })
    }

    /// Reads `buf.len()` bytes starting at `addr`, moving real data.
    /// Returns when the last burst completed.
    ///
    /// Column commands are pipelined at tCCD spacing, so streaming reads
    /// approach the bus bandwidth.
    ///
    /// # Errors
    ///
    /// Propagates bus violations.
    pub fn read_bytes(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<SimTime, BusViolation> {
        self.read_bytes_paced(bus, at, addr, buf, SimDuration::ZERO)
    }

    /// Like [`Imc::read_bytes`], but issues column commands no faster than
    /// `line_interval` apart. A CPU-driven copy loads one cacheline per
    /// load-buffer round trip, so its bus *exposure* is spread across the
    /// whole copy — which is what makes the host sensitive to refresh
    /// frequency (paper Figure 13).
    ///
    /// # Errors
    ///
    /// Propagates bus violations.
    pub fn read_bytes_paced(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        addr: u64,
        buf: &mut [u8],
        line_interval: SimDuration,
    ) -> Result<SimTime, BusViolation> {
        let len = buf.len() as u64;
        self.transfer(
            bus,
            at,
            addr,
            len,
            AccessKind::Read,
            line_interval,
            |bus, dec, line, dst| {
                let data = bus.device_mut().burst_read(dec.bank, dec.col);
                dst.copy_from_slice(&data[line.off..line.off + line.len]);
            },
            buf,
        )
    }

    /// Writes `data` starting at `addr`, moving real bytes (with
    /// read-modify-write for partial bursts). Returns when the last burst
    /// completed.
    ///
    /// # Errors
    ///
    /// Propagates bus violations.
    pub fn write_bytes(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        addr: u64,
        data: &[u8],
    ) -> Result<SimTime, BusViolation> {
        self.write_bytes_paced(bus, at, addr, data, SimDuration::ZERO)
    }

    /// Like [`Imc::write_bytes`] with a minimum per-line spacing (see
    /// [`Imc::read_bytes_paced`]).
    ///
    /// # Errors
    ///
    /// Propagates bus violations.
    pub fn write_bytes_paced(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        addr: u64,
        data: &[u8],
        line_interval: SimDuration,
    ) -> Result<SimTime, BusViolation> {
        let mut tmp = data.to_vec();
        self.transfer(
            bus,
            at,
            addr,
            data.len() as u64,
            AccessKind::Write,
            line_interval,
            |bus, dec, line, src| {
                let mut burst = if line.len == 64 {
                    [0u8; 64]
                } else {
                    bus.device_mut().burst_read(dec.bank, dec.col)
                };
                burst[line.off..line.off + line.len].copy_from_slice(&src[..line.len]);
                bus.device_mut().burst_write(dec.bank, dec.col, &burst);
            },
            &mut tmp,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer<F>(
        &mut self,
        bus: &mut SharedBus,
        at: SimTime,
        addr: u64,
        len: u64,
        kind: AccessKind,
        line_interval: SimDuration,
        mut mover: F,
        scratch: &mut [u8],
    ) -> Result<SimTime, BusViolation>
    where
        F: FnMut(&mut SharedBus, &DecodedAddr, LineSpan, &mut [u8]),
    {
        let mut pos = 0u64;
        let mut next_issue = at;
        let mut last_end = at;
        while pos < len {
            let a = addr + pos;
            let off = (a % 64) as usize;
            let n = (64 - off as u64).min(len - pos) as usize;
            let t = self.pump_refresh(bus, next_issue)?;
            let dec = Self::decode(bus, t, a)?;
            let col_at = self.open_row(bus, t, &dec)?;
            let res = self.column_access(bus, col_at, &dec, kind)?;
            mover(
                bus,
                &dec,
                LineSpan { off, len: n },
                &mut scratch[pos as usize..pos as usize + n],
            );
            // Pipeline the next column command at tCCD spacing, or at the
            // caller's pace when slower.
            next_issue = res.issued_at + bus.device().timing().tccd_l.max(line_interval);
            last_end = res.data_end;
            pos += n as u64;
        }
        Ok(last_end)
    }
}

/// The byte span of one access within a 64-byte burst.
#[derive(Debug, Clone, Copy)]
struct LineSpan {
    off: usize,
    len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DramDevice;
    use crate::timing::{SpeedBin, TimingParams};

    const CAP: u64 = 1 << 27;

    fn setup() -> (Imc, SharedBus) {
        let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let bus = SharedBus::new(DramDevice::new(timing, CAP));
        let imc = Imc::new(ImcConfig::from_timing(&timing));
        (imc, bus)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut imc, mut bus) = setup();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let t0 = SimTime::from_ns(100);
        let end = imc.write_bytes(&mut bus, t0, 8192, &payload).unwrap();
        assert!(end > t0);
        let mut out = vec![0u8; 4096];
        imc.read_bytes(&mut bus, end, 8192, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn unaligned_access_roundtrip() {
        let (mut imc, mut bus) = setup();
        let payload = [0xABu8; 100];
        let t0 = SimTime::from_ns(100);
        let end = imc.write_bytes(&mut bus, t0, 1000, &payload).unwrap();
        let mut out = [0u8; 100];
        imc.read_bytes(&mut bus, end, 1000, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn row_hits_on_sequential_lines() {
        let (mut imc, mut bus) = setup();
        let mut buf = vec![0u8; 4096];
        imc.read_bytes(&mut bus, SimTime::from_ns(100), 0, &mut buf)
            .unwrap();
        let s = imc.stats();
        // 64 lines in one 4KB page share a single row: 1 miss, 63 hits.
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 63);
    }

    #[test]
    fn refresh_issued_at_trefi_cadence() {
        let (mut imc, mut bus) = setup();
        // Pump well past 10 refresh intervals.
        let t = SimTime::ZERO + imc.trefi() * 10 + SimDuration::from_us(1.0);
        imc.pump_refresh(&mut bus, t).unwrap();
        // Ten refreshes were due. Those beyond the 8-deep postponement
        // budget are elided (deemed done during the idle jump); the rest
        // are issued live, possibly crossing one more due point.
        let s = imc.stats();
        let covered = s.refreshes + s.refreshes_elided;
        assert!((10..=12).contains(&covered), "covered = {covered}");
        assert!(
            s.refreshes <= 10 && s.refreshes >= 8,
            "live = {}",
            s.refreshes
        );
        assert_eq!(bus.stats().refreshes, s.refreshes);
    }

    #[test]
    fn streaming_read_beats_serialized_latency() {
        let (mut imc, mut bus) = setup();
        let mut buf = vec![0u8; 65536];
        let t0 = SimTime::from_ns(100);
        let end = imc.read_bytes(&mut bus, t0, 0, &mut buf).unwrap();
        let elapsed = end.since(t0);
        let bw = 65536.0 / elapsed.as_secs_f64() / 1e9; // GB/s
                                                        // DDR4-1600 peak is 12.8 GB/s; pipelined reads should exceed 5 GB/s
                                                        // (tCCD_L-limited ~10 GB/s minus ACT/refresh overhead).
        assert!(bw > 5.0, "streaming bandwidth {bw:.2} GB/s too low");
    }

    #[test]
    fn refresh_stall_grows_with_faster_trefi() {
        // The Figure 13 mechanism: quadrupling the refresh rate costs host
        // bandwidth.
        let run = |trefi_us: f64| {
            let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
                .with_trefi(SimDuration::from_us(trefi_us));
            let mut bus = SharedBus::new(DramDevice::new(timing, CAP));
            let mut imc = Imc::new(ImcConfig::from_timing(&timing));
            let mut t = SimTime::from_ns(100);
            let mut buf = vec![0u8; 4096];
            for i in 0..200u64 {
                t = imc
                    .read_bytes(&mut bus, t, (i * 4096) % (CAP / 2), &mut buf)
                    .unwrap();
            }
            t.since(SimTime::from_ns(100)).as_us_f64()
        };
        let slow = run(7.8);
        let fast = run(1.95);
        assert!(
            fast > slow * 1.02,
            "tREFI4 runtime {fast:.1}us not slower than tREFI {slow:.1}us"
        );
    }

    #[test]
    fn per_bank_pump_keeps_total_refresh_duty() {
        let (mut imc, mut bus) = setup();
        imc.set_refresh_mode(RefreshMode::PerBank);
        bus.set_refresh_mode(RefreshMode::PerBank);
        let t = SimTime::ZERO + imc.trefi() * 4 + SimDuration::from_us(1.0);
        imc.pump_refresh(&mut bus, t).unwrap();
        let s = imc.stats();
        // Four tREFIs of duty at one REFpb per tREFI/16: 64 bank
        // refreshes (give or take the pump crossing one more tick).
        assert!(
            (64..=66).contains(&s.refreshes),
            "live REFpb = {}",
            s.refreshes
        );
        assert_eq!(bus.stats().refreshes, s.refreshes);
    }

    #[test]
    fn per_bank_pump_never_blocks_the_rank() {
        let (mut imc, mut bus) = setup();
        imc.set_refresh_mode(RefreshMode::PerBank);
        bus.set_refresh_mode(RefreshMode::PerBank);
        // Drive one tick's refresh, then access a *different* bank inside
        // what would have been the rank-wide block.
        let tick = imc.trefi() / 16;
        let due = SimTime::ZERO + tick;
        imc.pump_refresh(&mut bus, due).unwrap();
        let refreshed = bus
            .device()
            .timing()
            .refresh_silicon_ready_pb(due)
            .since(due);
        assert!(refreshed > SimDuration::ZERO, "test premise");
        // Mid-tRFCpb: the whole rank is NOT blocked.
        assert_eq!(
            bus.host_ready_at(due + bus.device().timing().speed.tck()),
            due + bus.device().timing().speed.tck()
        );
    }

    #[test]
    fn per_bank_access_stalls_only_in_refreshing_bank() {
        let (mut imc, mut bus) = setup();
        imc.set_refresh_mode(RefreshMode::PerBank);
        bus.set_refresh_mode(RefreshMode::PerBank);
        imc.set_refresh_pref(Some((BankAddr::new(0, 0), 0)));
        let tick = imc.trefi() / 16;
        let due = SimTime::ZERO + tick;
        imc.pump_refresh(&mut bus, due).unwrap();
        let tck = bus.device().timing().speed.tck();
        // Bank (0,0) is refreshing: an access there must wait and record
        // stall; bank (1,0) is reachable immediately.
        let mapping = *bus.device().mapping();
        let other_addr = mapping.encode(BankAddr::new(1, 0), 0, 0);
        let hot_addr = mapping.encode(BankAddr::new(0, 0), 0, 0);
        let free = imc
            .access(&mut bus, due + tck, other_addr, AccessKind::Read)
            .unwrap();
        assert_eq!(free.issued_at, due + tck + bus.device().timing().trcd);
        let before = imc.stats().refresh_stall;
        let stalled = imc
            .access(&mut bus, due + tck, hot_addr, AccessKind::Read)
            .unwrap();
        assert!(stalled.issued_at > free.issued_at);
        assert!(imc.stats().refresh_stall > before);
    }

    #[test]
    fn deferral_forcing_reaches_every_bank_despite_sticky_pref() {
        let (mut imc, mut bus) = setup();
        imc.set_refresh_mode(RefreshMode::PerBank);
        bus.set_refresh_mode(RefreshMode::PerBank);
        bus.attach_recorder();
        // A planner that never changes its mind.
        imc.set_refresh_pref(Some((BankAddr::new(0, 0), 2)));
        let mut t = SimTime::ZERO;
        let tick = imc.trefi() / 16;
        for _ in 0..(u64::from(Imc::PB_FORCE_LIMIT) * 16 * 2) {
            t += tick;
            imc.pump_refresh(&mut bus, t).unwrap();
        }
        let trace = bus.take_trace();
        let mut seen = [0u64; 16];
        let mut last_seen_gap = [0u64; 16];
        let mut total = 0u64;
        for e in &trace {
            if let Command::RefreshBank { bank, .. } = e.cmd {
                total += 1;
                seen[usize::from(bank.index())] += 1;
                last_seen_gap[usize::from(bank.index())] = total;
            }
        }
        for i in 0..16 {
            assert!(seen[i] > 0, "bank {i} never refreshed: {seen:?}");
            assert!(
                total - last_seen_gap[i] <= u64::from(Imc::PB_FORCE_LIMIT) + 16,
                "bank {i} starved at end of run"
            );
        }
    }

    #[test]
    fn set_trefi_validates() {
        let (mut imc, _) = setup();
        imc.set_trefi(SimDuration::from_us(3.9));
        assert_eq!(imc.trefi(), SimDuration::from_us(3.9));
    }
}
