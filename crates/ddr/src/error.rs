//! Error types for the DDR4 substrate.

use crate::command::Command;
use nvdimmc_sim::SimTime;
use std::error::Error;
use std::fmt;

/// A violation of the shared-bus discipline — the failure class the
/// NVDIMM-C tRFC mechanism exists to prevent (paper §III-B, Figure 2a).
///
/// Any of these surfacing during a simulation corresponds to "an unexpected
/// state or a critical memory error" on real hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusViolation {
    /// Two masters drove the CA bus in the same cycle (paper case C1).
    CaConflict {
        /// Time of the conflicting issue.
        at: SimTime,
        /// The command that was already on the bus.
        existing: Command,
        /// The late-coming command.
        incoming: Command,
    },
    /// A command was issued to the DRAM while it was refreshing, outside
    /// the issuer's permitted window.
    CommandDuringRefresh {
        /// Time of the offending issue.
        at: SimTime,
        /// End of the refresh-busy period.
        busy_until: SimTime,
        /// The offending command.
        command: Command,
    },
    /// The NVMC issued a command outside an extra-tRFC window (it may only
    /// drive the bus inside one).
    NvmcOutsideWindow {
        /// Time of the offending issue.
        at: SimTime,
        /// The offending command.
        command: Command,
    },
    /// A command was illegal for the current bank state (e.g. READ to a
    /// precharged bank — paper case C2).
    BankState {
        /// Time of the offending issue.
        at: SimTime,
        /// The offending command.
        command: Command,
        /// Human-readable description of the state conflict.
        reason: String,
    },
    /// A JEDEC timing parameter was violated.
    Timing {
        /// Time of the offending issue.
        at: SimTime,
        /// The offending command.
        command: Command,
        /// The violated parameter (e.g. "tRCD").
        parameter: &'static str,
        /// The earliest legal issue time.
        legal_at: SimTime,
    },
}

impl fmt::Display for BusViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusViolation::CaConflict {
                at,
                existing,
                incoming,
            } => write!(
                f,
                "CA bus conflict at {at}: {incoming:?} collided with {existing:?}"
            ),
            BusViolation::CommandDuringRefresh {
                at,
                busy_until,
                command,
            } => write!(
                f,
                "{command:?} issued at {at} while DRAM refresh-busy until {busy_until}"
            ),
            BusViolation::NvmcOutsideWindow { at, command } => {
                write!(f, "NVMC issued {command:?} at {at} outside an extra-tRFC window")
            }
            BusViolation::BankState {
                at,
                command,
                reason,
            } => write!(f, "illegal {command:?} at {at}: {reason}"),
            BusViolation::Timing {
                at,
                command,
                parameter,
                legal_at,
            } => write!(
                f,
                "{parameter} violation: {command:?} at {at}, legal at {legal_at}"
            ),
        }
    }
}

impl Error for BusViolation {}

/// Errors from the DDR substrate that are not bus-discipline violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdrError {
    /// An address was outside the device capacity.
    AddressOutOfRange {
        /// The offending byte address.
        addr: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// An access straddled a boundary the operation cannot cross.
    Misaligned {
        /// The offending byte address.
        addr: u64,
        /// Required alignment in bytes.
        align: u64,
    },
}

impl fmt::Display for DdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdrError::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} out of range (capacity {capacity:#x})")
            }
            DdrError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} not aligned to {align}")
            }
        }
    }
}

impl Error for DdrError {}
