//! Error types for the DDR4 substrate.

use crate::bus::BusMaster;
use crate::command::Command;
use nvdimmc_sim::SimTime;
use std::error::Error;
use std::fmt;

/// A violation of the shared-bus discipline — the failure class the
/// NVDIMM-C tRFC mechanism exists to prevent (paper §III-B, Figure 2a).
///
/// Any of these surfacing during a simulation corresponds to "an unexpected
/// state or a critical memory error" on real hardware. Where the offending
/// master is known it is carried in the error (and printed), so race
/// diagnostics identify the actor: the bank/device layers construct these
/// with `master: None` and [`SharedBus`](crate::SharedBus) fills the
/// issuer in via [`BusViolation::with_master`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusViolation {
    /// Two masters drove the CA bus in the same cycle (paper case C1).
    CaConflict {
        /// Time of the conflicting issue.
        at: SimTime,
        /// The command that was already on the bus.
        existing: Command,
        /// Who was already driving the bus.
        existing_master: BusMaster,
        /// The late-coming command.
        incoming: Command,
        /// Who collided with it.
        incoming_master: BusMaster,
    },
    /// A command was issued to the DRAM while it was refreshing, outside
    /// the issuer's permitted window.
    CommandDuringRefresh {
        /// Time of the offending issue.
        at: SimTime,
        /// End of the refresh-busy period.
        busy_until: SimTime,
        /// The offending command.
        command: Command,
        /// The issuing master, where known.
        master: Option<BusMaster>,
    },
    /// The NVMC issued a command outside an extra-tRFC window (it may only
    /// drive the bus inside one).
    NvmcOutsideWindow {
        /// Time of the offending issue.
        at: SimTime,
        /// The offending command.
        command: Command,
    },
    /// A command was illegal for the current bank state (e.g. READ to a
    /// precharged bank — paper case C2).
    BankState {
        /// Time of the offending issue.
        at: SimTime,
        /// The offending command.
        command: Command,
        /// Human-readable description of the state conflict.
        reason: String,
        /// The issuing master, where known.
        master: Option<BusMaster>,
    },
    /// A JEDEC timing parameter was violated.
    Timing {
        /// Time of the offending issue.
        at: SimTime,
        /// The offending command.
        command: Command,
        /// The violated parameter (e.g. "tRCD").
        parameter: &'static str,
        /// The earliest legal issue time.
        legal_at: SimTime,
        /// The issuing master, where known.
        master: Option<BusMaster>,
    },
}

impl BusViolation {
    /// Fills in the issuing master on variants that track one but were
    /// constructed below the bus (bank/device layers), which cannot know
    /// who is driving. Already-attributed errors are left unchanged.
    #[must_use]
    pub fn with_master(mut self, m: BusMaster) -> Self {
        match &mut self {
            BusViolation::CommandDuringRefresh { master, .. }
            | BusViolation::BankState { master, .. }
            | BusViolation::Timing { master, .. } => {
                if master.is_none() {
                    *master = Some(m);
                }
            }
            BusViolation::CaConflict { .. } | BusViolation::NvmcOutsideWindow { .. } => {}
        }
        self
    }

    /// The issuing master, where the violation knows it.
    pub fn master(&self) -> Option<BusMaster> {
        match self {
            BusViolation::CaConflict {
                incoming_master, ..
            } => Some(*incoming_master),
            BusViolation::NvmcOutsideWindow { .. } => Some(BusMaster::Nvmc),
            BusViolation::CommandDuringRefresh { master, .. }
            | BusViolation::BankState { master, .. }
            | BusViolation::Timing { master, .. } => *master,
        }
    }
}

/// Formats an optional master as a `[...] ` prefix.
fn actor(master: &Option<BusMaster>) -> String {
    master.map_or_else(String::new, |m| format!("[{m}] "))
}

impl fmt::Display for BusViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusViolation::CaConflict {
                at,
                existing,
                existing_master,
                incoming,
                incoming_master,
            } => write!(
                f,
                "CA bus conflict at {at}: [{incoming_master}] {incoming:?} collided with \
                 [{existing_master}] {existing:?}"
            ),
            BusViolation::CommandDuringRefresh {
                at,
                busy_until,
                command,
                master,
            } => write!(
                f,
                "{}{command:?} issued at {at} while DRAM refresh-busy until {busy_until}",
                actor(master)
            ),
            BusViolation::NvmcOutsideWindow { at, command } => {
                write!(
                    f,
                    "[{}] {command:?} at {at} outside an extra-tRFC window",
                    BusMaster::Nvmc
                )
            }
            BusViolation::BankState {
                at,
                command,
                reason,
                master,
            } => write!(f, "{}illegal {command:?} at {at}: {reason}", actor(master)),
            BusViolation::Timing {
                at,
                command,
                parameter,
                legal_at,
                master,
            } => write!(
                f,
                "{}{parameter} violation: {command:?} at {at}, legal at {legal_at}",
                actor(master)
            ),
        }
    }
}

impl Error for BusViolation {}

/// Errors from the DDR substrate that are not bus-discipline violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdrError {
    /// An address was outside the device capacity.
    AddressOutOfRange {
        /// The offending byte address.
        addr: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// An access straddled a boundary the operation cannot cross.
    Misaligned {
        /// The offending byte address.
        addr: u64,
        /// Required alignment in bytes.
        align: u64,
    },
}

impl fmt::Display for DdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdrError::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} out of range (capacity {capacity:#x})")
            }
            DdrError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} not aligned to {align}")
            }
        }
    }
}

impl Error for DdrError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankAddr;

    #[test]
    fn display_names_the_offending_master() {
        let v = BusViolation::Timing {
            at: SimTime::from_ns(10),
            command: Command::Refresh,
            parameter: "tRP",
            legal_at: SimTime::from_ns(20),
            master: None,
        };
        assert!(!v.to_string().contains('['), "no actor known yet");
        let v = v.with_master(BusMaster::HostImc);
        assert!(v.to_string().starts_with("[host iMC] "), "{v}");
        assert_eq!(v.master(), Some(BusMaster::HostImc));
    }

    #[test]
    fn with_master_does_not_overwrite() {
        let v = BusViolation::BankState {
            at: SimTime::ZERO,
            command: Command::PrechargeAll,
            reason: "x".to_owned(),
            master: Some(BusMaster::Nvmc),
        }
        .with_master(BusMaster::HostImc);
        assert_eq!(v.master(), Some(BusMaster::Nvmc));
    }

    #[test]
    fn ca_conflict_names_both_masters() {
        let v = BusViolation::CaConflict {
            at: SimTime::ZERO,
            existing: Command::Refresh,
            existing_master: BusMaster::HostImc,
            incoming: Command::Precharge {
                bank: BankAddr::new(0, 0),
            },
            incoming_master: BusMaster::Nvmc,
        };
        let s = v.to_string();
        assert!(s.contains("[NVMC]") && s.contains("[host iMC]"), "{s}");
        assert_eq!(v.master(), Some(BusMaster::Nvmc));
    }
}
