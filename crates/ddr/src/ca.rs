//! Pin-level command/address (CA) encoding.
//!
//! NVDIMM-C's refresh detector does not see decoded commands — it snoops
//! six physical CA pins (CKE, CS_n, ACT_n, RAS_n/A16, CAS_n/A15, WE_n/A14;
//! paper §IV-A) routed to the FPGA. This module implements the DDR4 command
//! truth table over those pins so the detector can be exercised at the same
//! level of abstraction as the RTL.

use crate::command::{BankAddr, Command};
use serde::{Deserialize, Serialize};

/// The CA-bus pin state captured at one command edge.
///
/// All `_n` pins are active-low but stored as electrical levels
/// (`true` = High), matching the paper's description of the refresh state:
/// "CKE, ACT_n and WE_n are H while the other pins are L".
///
/// # Example
///
/// ```
/// use nvdimmc_ddr::{CaPins, Command};
///
/// let pins = CaPins::encode(&Command::PrechargeAll);
/// assert!(pins.a10, "PREA is PRE with A10 high");
/// assert_eq!(CaPins::decode(&pins), Some(Command::PrechargeAll));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaPins {
    /// Clock-enable level at the previous clock edge (needed to recognise
    /// self-refresh entry/exit transitions).
    pub cke_prev: bool,
    /// Clock-enable level at this edge.
    pub cke: bool,
    /// Chip select (High = device deselected).
    pub cs_n: bool,
    /// ACT_n (Low = ACTIVATE; High = other commands).
    pub act_n: bool,
    /// RAS_n / A16 multiplexed pin.
    pub ras_n: bool,
    /// CAS_n / A15 multiplexed pin.
    pub cas_n: bool,
    /// WE_n / A14 multiplexed pin.
    pub we_n: bool,
    /// A10 / auto-precharge pin.
    pub a10: bool,
    /// Remaining address bits (row or column).
    pub addr: u32,
    /// Bank-group bits.
    pub bg: u8,
    /// Bank-address bits.
    pub ba: u8,
}

impl CaPins {
    /// An idle bus (deselect, clock enabled).
    pub fn idle() -> Self {
        CaPins {
            cke_prev: true,
            cke: true,
            cs_n: true,
            act_n: true,
            ras_n: true,
            cas_n: true,
            we_n: true,
            a10: false,
            addr: 0,
            bg: 0,
            ba: 0,
        }
    }

    /// Encodes a command into pin levels per the DDR4 truth table.
    pub fn encode(cmd: &Command) -> CaPins {
        let mut p = CaPins::idle();
        match *cmd {
            Command::Deselect => {
                // cs_n stays high.
            }
            Command::Activate { bank, row } => {
                p.cs_n = false;
                p.act_n = false;
                // With ACT_n low, RAS/CAS/WE carry row address bits A16..A14.
                p.ras_n = (row >> 16) & 1 == 1;
                p.cas_n = (row >> 15) & 1 == 1;
                p.we_n = (row >> 14) & 1 == 1;
                p.a10 = (row >> 10) & 1 == 1;
                p.addr = row;
                p.bg = bank.group;
                p.ba = bank.bank;
            }
            Command::ModeRegisterSet { register, value } => {
                p.cs_n = false;
                p.ras_n = false;
                p.cas_n = false;
                p.we_n = false;
                p.bg = register >> 2;
                p.ba = register & 0b11;
                p.addr = u32::from(value);
            }
            Command::Refresh => {
                p.cs_n = false;
                p.ras_n = false;
                p.cas_n = false;
                p.we_n = true;
            }
            Command::RefreshBank { bank, stretch } => {
                // The DDR4-reserved (RAS_n L, CAS_n H, WE_n H) slot; the
                // bank rides on BG/BA and the stretch level on the address
                // pins so a CA snooper recovers the full window geometry.
                p.cs_n = false;
                p.ras_n = false;
                p.cas_n = true;
                p.we_n = true;
                p.bg = bank.group;
                p.ba = bank.bank;
                p.addr = u32::from(stretch);
            }
            Command::SelfRefreshEnter => {
                // REF encoding with CKE falling.
                p.cs_n = false;
                p.ras_n = false;
                p.cas_n = false;
                p.we_n = true;
                p.cke_prev = true;
                p.cke = false;
            }
            Command::SelfRefreshExit => {
                // DES with CKE rising.
                p.cs_n = true;
                p.cke_prev = false;
                p.cke = true;
            }
            Command::Precharge { bank } => {
                p.cs_n = false;
                p.ras_n = false;
                p.cas_n = true;
                p.we_n = false;
                p.a10 = false;
                p.bg = bank.group;
                p.ba = bank.bank;
            }
            Command::PrechargeAll => {
                p.cs_n = false;
                p.ras_n = false;
                p.cas_n = true;
                p.we_n = false;
                p.a10 = true;
            }
            Command::Write {
                bank,
                col,
                auto_precharge,
            } => {
                p.cs_n = false;
                p.ras_n = true;
                p.cas_n = false;
                p.we_n = false;
                p.a10 = auto_precharge;
                p.addr = u32::from(col);
                p.bg = bank.group;
                p.ba = bank.bank;
            }
            Command::Read {
                bank,
                col,
                auto_precharge,
            } => {
                p.cs_n = false;
                p.ras_n = true;
                p.cas_n = false;
                p.we_n = true;
                p.a10 = auto_precharge;
                p.addr = u32::from(col);
                p.bg = bank.group;
                p.ba = bank.bank;
            }
            Command::ZqCalibration => {
                p.cs_n = false;
                p.ras_n = true;
                p.cas_n = true;
                p.we_n = false;
            }
        }
        p
    }

    /// Decodes pin levels back into a command. Every DDR4 slot is now
    /// occupied (the formerly reserved encoding carries per-bank refresh),
    /// so this returns `Some` for all well-formed pin states.
    pub fn decode(p: &CaPins) -> Option<Command> {
        // Self-refresh exit: deselect with CKE rising edge.
        if !p.cke_prev && p.cke && p.cs_n {
            return Some(Command::SelfRefreshExit);
        }
        if p.cs_n {
            return Some(Command::Deselect);
        }
        if !p.act_n {
            let bank = BankAddr::new(p.bg, p.ba);
            return Some(Command::Activate { bank, row: p.addr });
        }
        match (p.ras_n, p.cas_n, p.we_n) {
            (false, false, false) => Some(Command::ModeRegisterSet {
                register: (p.bg << 2) | p.ba,
                value: p.addr as u16,
            }),
            (false, false, true) => {
                if p.cke_prev && !p.cke {
                    Some(Command::SelfRefreshEnter)
                } else {
                    Some(Command::Refresh)
                }
            }
            (false, true, false) => {
                if p.a10 {
                    Some(Command::PrechargeAll)
                } else {
                    Some(Command::Precharge {
                        bank: BankAddr::new(p.bg, p.ba),
                    })
                }
            }
            (true, false, false) => Some(Command::Write {
                bank: BankAddr::new(p.bg, p.ba),
                col: p.addr as u16,
                auto_precharge: p.a10,
            }),
            (true, false, true) => Some(Command::Read {
                bank: BankAddr::new(p.bg, p.ba),
                col: p.addr as u16,
                auto_precharge: p.a10,
            }),
            (true, true, false) => Some(Command::ZqCalibration),
            (true, true, true) => Some(Command::Deselect), // NOP
            // The DDR4-reserved slot, repurposed for per-bank refresh.
            (false, true, true) => Some(Command::RefreshBank {
                bank: BankAddr::new(p.bg & 0b11, p.ba & 0b11),
                stretch: (p.addr & 0xF) as u8,
            }),
        }
    }

    /// The six pin levels the NVDIMM-C FPGA monitors, in the paper's order:
    /// CKE, CS_n, ACT_n, RAS_n, CAS_n, WE_n.
    pub fn monitored_pins(&self) -> [bool; 6] {
        [
            self.cke, self.cs_n, self.act_n, self.ras_n, self.cas_n, self.we_n,
        ]
    }

    /// Whether these pins show the refresh state the detector matches:
    /// CKE, ACT_n, WE_n high and CS_n, RAS_n, CAS_n low (paper §IV-A).
    pub fn is_refresh_state(&self) -> bool {
        self.cke && self.act_n && self.we_n && !self.cs_n && !self.ras_n && !self.cas_n
    }

    /// Whether these pins show the *per-bank* refresh state: identical to
    /// the REF state except CAS_n is high (the repurposed reserved slot).
    pub fn is_refresh_bank_state(&self) -> bool {
        self.cke && self.act_n && self.we_n && !self.cs_n && !self.ras_n && self.cas_n
    }
}

impl Default for CaPins {
    fn default() -> Self {
        Self::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_commands() -> Vec<Command> {
        let b = BankAddr::new(2, 1);
        vec![
            Command::Deselect,
            Command::Activate {
                bank: b,
                row: 0x1_55AA,
            },
            Command::Read {
                bank: b,
                col: 0x3F8,
                auto_precharge: false,
            },
            Command::Read {
                bank: b,
                col: 0x3F8,
                auto_precharge: true,
            },
            Command::Write {
                bank: b,
                col: 0x10,
                auto_precharge: false,
            },
            Command::Precharge { bank: b },
            Command::PrechargeAll,
            Command::Refresh,
            Command::RefreshBank {
                bank: b,
                stretch: 0,
            },
            Command::RefreshBank {
                bank: b,
                stretch: 9,
            },
            Command::SelfRefreshEnter,
            Command::SelfRefreshExit,
            Command::ModeRegisterSet {
                register: 6,
                value: 0x155,
            },
            Command::ZqCalibration,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for cmd in all_commands() {
            let pins = CaPins::encode(&cmd);
            assert_eq!(CaPins::decode(&pins), Some(cmd), "roundtrip of {cmd:?}");
        }
    }

    #[test]
    fn refresh_state_matches_paper_truth_table() {
        let pins = CaPins::encode(&Command::Refresh);
        assert!(pins.is_refresh_state());
        assert_eq!(
            pins.monitored_pins(),
            [true, false, true, false, false, true],
            "CKE H, CS_n L, ACT_n H, RAS_n L, CAS_n L, WE_n H"
        );
    }

    #[test]
    fn sre_is_not_plain_refresh_state_decode() {
        let pins = CaPins::encode(&Command::SelfRefreshEnter);
        // Same combinational state as REF...
        assert!(pins.is_refresh_state() || !pins.cke);
        // ...but the decoder distinguishes it by the CKE transition.
        assert_eq!(CaPins::decode(&pins), Some(Command::SelfRefreshEnter));
    }

    #[test]
    fn commands_are_mutually_exclusive_on_pins() {
        // Paper §IV-A: "the CA states of all DDR4 commands are mutually
        // exclusive". No two distinct commands encode identically.
        let cmds = all_commands();
        for (i, a) in cmds.iter().enumerate() {
            for b in cmds.iter().skip(i + 1) {
                assert_ne!(
                    CaPins::encode(a),
                    CaPins::encode(b),
                    "{a:?} and {b:?} alias on the CA bus"
                );
            }
        }
    }

    #[test]
    fn only_refresh_matches_detector_state() {
        // The detector's combinational match must hit REF and nothing else
        // that has CKE held high.
        for cmd in all_commands() {
            let pins = CaPins::encode(&cmd);
            if pins.is_refresh_state() && pins.cke_prev {
                assert_eq!(cmd, Command::Refresh);
            }
        }
    }

    #[test]
    fn reserved_encoding_now_carries_per_bank_refresh() {
        // The formerly-reserved (RAS_n L, CAS_n H, WE_n H) slot decodes to
        // REFpb, bank on BG/BA, stretch on the low address bits.
        let mut pins = CaPins::idle();
        pins.cs_n = false;
        pins.ras_n = false;
        pins.cas_n = true;
        pins.we_n = true;
        pins.bg = 2;
        pins.ba = 3;
        pins.addr = 11;
        assert_eq!(
            CaPins::decode(&pins),
            Some(Command::RefreshBank {
                bank: BankAddr::new(2, 3),
                stretch: 11,
            })
        );
    }

    #[test]
    fn per_bank_refresh_state_is_distinct_from_ref() {
        let pb = CaPins::encode(&Command::RefreshBank {
            bank: BankAddr::new(1, 2),
            stretch: 4,
        });
        assert!(pb.is_refresh_bank_state());
        assert!(!pb.is_refresh_state(), "REFpb must not alias all-bank REF");
        let r = CaPins::encode(&Command::Refresh);
        assert!(!r.is_refresh_bank_state());
        // No other command matches the per-bank detector state.
        for cmd in all_commands() {
            let pins = CaPins::encode(&cmd);
            if pins.is_refresh_bank_state() {
                assert!(matches!(cmd, Command::RefreshBank { .. }), "{cmd:?}");
            }
        }
    }

    #[test]
    fn activate_carries_row_on_multiplexed_pins() {
        let bank = BankAddr::new(0, 0);
        let row = 0b1_0100_0000_0000_0000u32; // bit16 and bit14 set
        let pins = CaPins::encode(&Command::Activate { bank, row });
        assert!(pins.ras_n, "A16 high");
        assert!(!pins.cas_n, "A15 low");
        assert!(pins.we_n, "A14 high");
        assert!(!pins.is_refresh_state(), "ACT never matches the detector");
    }
}
