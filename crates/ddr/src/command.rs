//! The DDR4 command set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bank address: bank group + bank within the group.
///
/// DDR4 x8 devices have 4 bank groups × 4 banks = 16 banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankAddr {
    /// Bank group, 0..4.
    pub group: u8,
    /// Bank within group, 0..4.
    pub bank: u8,
}

impl BankAddr {
    /// Number of bank groups.
    pub const GROUPS: u8 = 4;
    /// Banks per group.
    pub const BANKS_PER_GROUP: u8 = 4;
    /// Total banks.
    pub const COUNT: u8 = Self::GROUPS * Self::BANKS_PER_GROUP;

    /// Creates a bank address.
    ///
    /// # Panics
    ///
    /// Panics if `group` or `bank` exceed the DDR4 limits.
    pub fn new(group: u8, bank: u8) -> Self {
        assert!(group < Self::GROUPS, "bank group out of range");
        assert!(bank < Self::BANKS_PER_GROUP, "bank out of range");
        BankAddr { group, bank }
    }

    /// Creates a bank address from a flat index `0..16`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn from_index(index: u8) -> Self {
        assert!(index < Self::COUNT, "bank index out of range");
        BankAddr {
            group: index / Self::BANKS_PER_GROUP,
            bank: index % Self::BANKS_PER_GROUP,
        }
    }

    /// Flat index `0..16`.
    pub const fn index(self) -> u8 {
        self.group * Self::BANKS_PER_GROUP + self.bank
    }
}

impl fmt::Display for BankAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BG{}BA{}", self.group, self.bank)
    }
}

/// A DDR4 command as issued on the CA bus.
///
/// `SelfRefreshEnter`/`SelfRefreshExit` are included because the paper's
/// refresh detector must *not* trigger on them (§IV-A: "the variants of
/// refresh commands such as SRE and SRX are defined by different states").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Open `row` in `bank` (ACT).
    Activate {
        /// Target bank.
        bank: BankAddr,
        /// Row to open.
        row: u32,
    },
    /// Burst read from the open row of `bank` at column `col` (RD / RDA).
    Read {
        /// Target bank.
        bank: BankAddr,
        /// Column address.
        col: u16,
        /// Auto-precharge (A10 high).
        auto_precharge: bool,
    },
    /// Burst write to the open row of `bank` at column `col` (WR / WRA).
    Write {
        /// Target bank.
        bank: BankAddr,
        /// Column address.
        col: u16,
        /// Auto-precharge (A10 high).
        auto_precharge: bool,
    },
    /// Close the open row of `bank` (PRE).
    Precharge {
        /// Target bank.
        bank: BankAddr,
    },
    /// Close all open rows (PREA; A10 high). Required before an all-bank
    /// REFRESH (paper §III-B); per-bank refresh only needs its own bank
    /// precharged.
    PrechargeAll,
    /// All-bank refresh (REF). The command the NVDIMM-C detector snoops.
    Refresh,
    /// Single-bank refresh (REFpb) — the per-bank-window extension. DDR4
    /// proper has no such command; this model assigns it the reserved
    /// `(RAS_n L, CAS_n H, WE_n H)` CA encoding, carrying the target bank
    /// on BG/BA and the window stretch level on the address pins, so the
    /// snooping detector can recover both from the trace.
    RefreshBank {
        /// The one bank being refreshed; only it is blocked for the host.
        bank: BankAddr,
        /// Window stretch level (`closes = ref_at + tRFCpb_total +
        /// stretch × quantum`), clamped to [`crate::TimingParams::MAX_STRETCH`].
        stretch: u8,
    },
    /// Self-refresh entry (REF encoding with CKE falling).
    SelfRefreshEnter,
    /// Self-refresh exit (DES/NOP with CKE rising).
    SelfRefreshExit,
    /// Mode-register set.
    ModeRegisterSet {
        /// Mode register index (0..7).
        register: u8,
        /// Register value (14 bits used).
        value: u16,
    },
    /// ZQ calibration (long).
    ZqCalibration,
    /// Deselect — no command captured this cycle.
    Deselect,
}

impl Command {
    /// The bank this command addresses, if it is bank-scoped.
    pub fn bank(&self) -> Option<BankAddr> {
        match *self {
            Command::Activate { bank, .. }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. }
            | Command::Precharge { bank }
            | Command::RefreshBank { bank, .. } => Some(bank),
            _ => None,
        }
    }

    /// Whether this command transfers data on the DQ bus.
    pub fn is_data_transfer(&self) -> bool {
        matches!(self, Command::Read { .. } | Command::Write { .. })
    }

    /// Whether this is one of the refresh-family encodings.
    pub fn is_refresh_family(&self) -> bool {
        matches!(
            self,
            Command::Refresh
                | Command::RefreshBank { .. }
                | Command::SelfRefreshEnter
                | Command::SelfRefreshExit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_index_roundtrip() {
        for i in 0..BankAddr::COUNT {
            assert_eq!(BankAddr::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "bank group out of range")]
    fn bank_group_bounds_checked() {
        BankAddr::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "bank index out of range")]
    fn bank_index_bounds_checked() {
        BankAddr::from_index(16);
    }

    #[test]
    fn command_bank_scoping() {
        let b = BankAddr::new(1, 2);
        assert_eq!(Command::Activate { bank: b, row: 7 }.bank(), Some(b));
        assert_eq!(Command::Refresh.bank(), None);
        assert_eq!(Command::PrechargeAll.bank(), None);
    }

    #[test]
    fn data_transfer_classification() {
        let b = BankAddr::new(0, 0);
        assert!(Command::Read {
            bank: b,
            col: 0,
            auto_precharge: false
        }
        .is_data_transfer());
        assert!(!Command::Activate { bank: b, row: 0 }.is_data_transfer());
    }

    #[test]
    fn refresh_family_classification() {
        assert!(Command::Refresh.is_refresh_family());
        assert!(Command::RefreshBank {
            bank: BankAddr::new(0, 0),
            stretch: 0
        }
        .is_refresh_family());
        assert!(Command::SelfRefreshEnter.is_refresh_family());
        assert!(Command::SelfRefreshExit.is_refresh_family());
        assert!(!Command::PrechargeAll.is_refresh_family());
    }

    #[test]
    fn refresh_bank_is_bank_scoped() {
        let b = BankAddr::new(3, 1);
        assert_eq!(
            Command::RefreshBank {
                bank: b,
                stretch: 7
            }
            .bank(),
            Some(b)
        );
    }

    #[test]
    fn display_bank() {
        assert_eq!(BankAddr::new(2, 3).to_string(), "BG2BA3");
    }
}
