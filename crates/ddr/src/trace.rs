//! Bus-command trace capture for offline verification.
//!
//! A [`TraceRecorder`] can be attached to a [`SharedBus`](crate::SharedBus)
//! to observe every *accepted* command: who issued it, when, what it
//! targets, and — for data transfers — the interval during which the DQ
//! (data) pins are occupied. The `nvdimmc-check` crate replays these
//! traces through an independent rule suite (JEDEC timing linter,
//! multi-master race detector, refresh-window invariants), so a bug in the
//! inline bus/device checks cannot silently vouch for itself.

use crate::bus::BusMaster;
use crate::command::Command;
use crate::timing::TimingParams;
use nvdimmc_sim::SimTime;

/// One accepted bus command, as seen at the module connector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue instant (start of the CA slot).
    pub at: SimTime,
    /// End of the CA slot (`at` + one tCK).
    pub ca_end: SimTime,
    /// Which master drove the command.
    pub master: BusMaster,
    /// The command itself (carries its bank/row/column target).
    pub cmd: Command,
    /// DQ-pin occupancy `[start, end)` for data transfers, `None`
    /// otherwise. Reads occupy after tCL, writes after tCWL, both for one
    /// BL8 burst.
    pub data: Option<(SimTime, SimTime)>,
}

impl TraceEntry {
    /// Builds an entry, deriving the CA slot and DQ occupancy from the
    /// timing parameters the device is running with.
    pub fn observe(master: BusMaster, at: SimTime, cmd: Command, t: &TimingParams) -> Self {
        let data = if cmd.is_data_transfer() {
            Some(t.dq_window(at, matches!(cmd, Command::Read { .. })))
        } else {
            None
        };
        TraceEntry {
            at,
            ca_end: at + t.speed.tck(),
            master,
            cmd,
            data,
        }
    }
}

/// Accumulates [`TraceEntry`]s; attach via
/// [`SharedBus::attach_recorder`](crate::SharedBus::attach_recorder).
#[derive(Debug, Default)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records one accepted command.
    pub fn record(&mut self, master: BusMaster, at: SimTime, cmd: Command, t: &TimingParams) {
        self.entries.push(TraceEntry::observe(master, at, cmd, t));
    }

    /// The trace so far, in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes the accumulated trace, leaving the recorder attached and
    /// empty.
    pub fn take(&mut self) -> Vec<TraceEntry> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankAddr;
    use crate::timing::SpeedBin;

    #[test]
    fn read_occupies_dq_after_tcl() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let at = SimTime::from_ns(100);
        let e = TraceEntry::observe(
            BusMaster::HostImc,
            at,
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
            &t,
        );
        let (start, end) = e.data.expect("read moves data");
        assert_eq!(start, at + t.tcl);
        assert_eq!(end, at + t.tcl + t.burst_time());
        assert_eq!(e.ca_end, at + t.speed.tck());
    }

    #[test]
    fn non_data_commands_leave_dq_idle() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let e = TraceEntry::observe(
            BusMaster::Nvmc,
            SimTime::from_ns(5),
            Command::PrechargeAll,
            &t,
        );
        assert_eq!(e.data, None);
    }

    #[test]
    fn recorder_take_empties_but_stays_usable() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let mut r = TraceRecorder::new();
        r.record(BusMaster::HostImc, SimTime::ZERO, Command::Refresh, &t);
        assert_eq!(r.len(), 1);
        assert_eq!(r.take().len(), 1);
        assert!(r.is_empty());
        r.record(BusMaster::HostImc, SimTime::ZERO, Command::Deselect, &t);
        assert_eq!(r.len(), 1);
    }
}
