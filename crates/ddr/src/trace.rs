//! Bus-command trace capture for offline verification.
//!
//! A [`TraceRecorder`] can be attached to a [`SharedBus`](crate::SharedBus)
//! to observe every *accepted* command: who issued it, when, what it
//! targets, and — for data transfers — the interval during which the DQ
//! (data) pins are occupied. The `nvdimmc-check` crate replays these
//! traces through an independent rule suite (JEDEC timing linter,
//! multi-master race detector, refresh-window invariants), so a bug in the
//! inline bus/device checks cannot silently vouch for itself.

use crate::bus::BusMaster;
use crate::command::{BankAddr, Command};
use crate::timing::TimingParams;
use nvdimmc_sim::SimTime;

/// One accepted bus command, as seen at the module connector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue instant (start of the CA slot).
    pub at: SimTime,
    /// End of the CA slot (`at` + one tCK).
    pub ca_end: SimTime,
    /// Which master drove the command.
    pub master: BusMaster,
    /// The command itself (carries its bank/row/column target).
    pub cmd: Command,
    /// DQ-pin occupancy `[start, end)` for data transfers, `None`
    /// otherwise. Reads occupy after tCL, writes after tCWL, both for one
    /// BL8 burst.
    pub data: Option<(SimTime, SimTime)>,
}

impl TraceEntry {
    /// Builds an entry, deriving the CA slot and DQ occupancy from the
    /// timing parameters the device is running with.
    pub fn observe(master: BusMaster, at: SimTime, cmd: Command, t: &TimingParams) -> Self {
        let data = if cmd.is_data_transfer() {
            Some(t.dq_window(at, matches!(cmd, Command::Read { .. })))
        } else {
            None
        };
        TraceEntry {
            at,
            ca_end: at + t.speed.tck(),
            master,
            cmd,
            data,
        }
    }

    /// Serializes the entry as one whitespace-delimited text line, for
    /// golden-trace corpus files replayed by regression tests:
    /// `<at_ps> <ca_end_ps> <host|nvmc> <MNEMONIC> [operands…] [dq <start_ps> <end_ps>]`.
    pub fn to_line(&self) -> String {
        let master = match self.master {
            BusMaster::HostImc => "host",
            BusMaster::Nvmc => "nvmc",
        };
        let cmd = match self.cmd {
            Command::Activate { bank, row } => {
                format!("ACT {} {} {row}", bank.group, bank.bank)
            }
            Command::Read {
                bank,
                col,
                auto_precharge,
            } => format!(
                "{} {} {} {col}",
                if auto_precharge { "RDA" } else { "RD" },
                bank.group,
                bank.bank
            ),
            Command::Write {
                bank,
                col,
                auto_precharge,
            } => format!(
                "{} {} {} {col}",
                if auto_precharge { "WRA" } else { "WR" },
                bank.group,
                bank.bank
            ),
            Command::Precharge { bank } => format!("PRE {} {}", bank.group, bank.bank),
            Command::PrechargeAll => "PREA".to_string(),
            Command::Refresh => "REF".to_string(),
            Command::RefreshBank { bank, stretch } => {
                format!("REFPB {} {} {stretch}", bank.group, bank.bank)
            }
            Command::SelfRefreshEnter => "SRE".to_string(),
            Command::SelfRefreshExit => "SRX".to_string(),
            Command::ModeRegisterSet { register, value } => format!("MRS {register} {value}"),
            Command::ZqCalibration => "ZQ".to_string(),
            Command::Deselect => "DES".to_string(),
        };
        let mut line = format!("{} {} {master} {cmd}", self.at.as_ps(), self.ca_end.as_ps());
        if let Some((start, end)) = self.data {
            line.push_str(&format!(" dq {} {}", start.as_ps(), end.as_ps()));
        }
        line
    }

    /// Parses one [`Self::to_line`] line back into an entry. Blank lines
    /// and `#` comments are the caller's problem; this expects one entry.
    pub fn from_line(line: &str) -> Result<Self, String> {
        fn next<'a>(
            f: &mut impl Iterator<Item = &'a str>,
            what: &str,
            line: &str,
        ) -> Result<&'a str, String> {
            f.next().ok_or_else(|| format!("missing {what}: {line:?}"))
        }
        fn int(what: &str, tok: &str, line: &str) -> Result<u64, String> {
            tok.parse::<u64>()
                .map_err(|_| format!("bad {what} {tok:?}: {line:?}"))
        }
        fn bank<'a>(f: &mut impl Iterator<Item = &'a str>, line: &str) -> Result<BankAddr, String> {
            let g = int("group", next(f, "group", line)?, line)?;
            let b = int("bank", next(f, "bank", line)?, line)?;
            if g >= u64::from(BankAddr::GROUPS) || b >= u64::from(BankAddr::BANKS_PER_GROUP) {
                return Err(format!("bank address out of range: {line:?}"));
            }
            Ok(BankAddr::new(g as u8, b as u8))
        }

        let mut f = line.split_whitespace();
        let at = SimTime::from_ps(int("at", next(&mut f, "at", line)?, line)?);
        let ca_end = SimTime::from_ps(int("ca_end", next(&mut f, "ca_end", line)?, line)?);
        let master = match next(&mut f, "master", line)? {
            "host" => BusMaster::HostImc,
            "nvmc" => BusMaster::Nvmc,
            other => return Err(format!("unknown master {other:?}: {line:?}")),
        };
        let mnemonic = next(&mut f, "mnemonic", line)?;
        let cmd = match mnemonic {
            "ACT" => {
                let b = bank(&mut f, line)?;
                Command::Activate {
                    bank: b,
                    row: int("row", next(&mut f, "row", line)?, line)? as u32,
                }
            }
            "RD" | "RDA" | "WR" | "WRA" => {
                let b = bank(&mut f, line)?;
                let col = int("col", next(&mut f, "col", line)?, line)? as u16;
                let auto_precharge = mnemonic.ends_with('A');
                if mnemonic.starts_with("RD") {
                    Command::Read {
                        bank: b,
                        col,
                        auto_precharge,
                    }
                } else {
                    Command::Write {
                        bank: b,
                        col,
                        auto_precharge,
                    }
                }
            }
            "PRE" => Command::Precharge {
                bank: bank(&mut f, line)?,
            },
            "PREA" => Command::PrechargeAll,
            "REF" => Command::Refresh,
            "REFPB" => {
                let b = bank(&mut f, line)?;
                Command::RefreshBank {
                    bank: b,
                    stretch: int("stretch", next(&mut f, "stretch", line)?, line)? as u8,
                }
            }
            "SRE" => Command::SelfRefreshEnter,
            "SRX" => Command::SelfRefreshExit,
            "MRS" => Command::ModeRegisterSet {
                register: int("register", next(&mut f, "register", line)?, line)? as u8,
                value: int("value", next(&mut f, "value", line)?, line)? as u16,
            },
            "ZQ" => Command::ZqCalibration,
            "DES" => Command::Deselect,
            other => return Err(format!("unknown mnemonic {other:?}: {line:?}")),
        };
        let data = match f.next() {
            None => None,
            Some("dq") => {
                let start =
                    SimTime::from_ps(int("dq start", next(&mut f, "dq start", line)?, line)?);
                let end = SimTime::from_ps(int("dq end", next(&mut f, "dq end", line)?, line)?);
                Some((start, end))
            }
            Some(other) => return Err(format!("trailing token {other:?}: {line:?}")),
        };
        if f.next().is_some() {
            return Err(format!("trailing tokens: {line:?}"));
        }
        Ok(TraceEntry {
            at,
            ca_end,
            master,
            cmd,
            data,
        })
    }
}

/// Accumulates [`TraceEntry`]s; attach via
/// [`SharedBus::attach_recorder`](crate::SharedBus::attach_recorder).
#[derive(Debug, Default)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records one accepted command.
    pub fn record(&mut self, master: BusMaster, at: SimTime, cmd: Command, t: &TimingParams) {
        self.entries.push(TraceEntry::observe(master, at, cmd, t));
    }

    /// The trace so far, in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes the accumulated trace, leaving the recorder attached and
    /// empty.
    pub fn take(&mut self) -> Vec<TraceEntry> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankAddr;
    use crate::timing::SpeedBin;

    #[test]
    fn read_occupies_dq_after_tcl() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let at = SimTime::from_ns(100);
        let e = TraceEntry::observe(
            BusMaster::HostImc,
            at,
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
            &t,
        );
        let (start, end) = e.data.expect("read moves data");
        assert_eq!(start, at + t.tcl);
        assert_eq!(end, at + t.tcl + t.burst_time());
        assert_eq!(e.ca_end, at + t.speed.tck());
    }

    #[test]
    fn non_data_commands_leave_dq_idle() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let e = TraceEntry::observe(
            BusMaster::Nvmc,
            SimTime::from_ns(5),
            Command::PrechargeAll,
            &t,
        );
        assert_eq!(e.data, None);
    }

    #[test]
    fn trace_lines_roundtrip_every_command() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let b = BankAddr::new(2, 1);
        let cmds = [
            (BusMaster::HostImc, Command::Activate { bank: b, row: 4093 }),
            (
                BusMaster::Nvmc,
                Command::Read {
                    bank: b,
                    col: 127,
                    auto_precharge: true,
                },
            ),
            (
                BusMaster::HostImc,
                Command::Write {
                    bank: b,
                    col: 3,
                    auto_precharge: false,
                },
            ),
            (BusMaster::Nvmc, Command::Precharge { bank: b }),
            (BusMaster::HostImc, Command::PrechargeAll),
            (BusMaster::HostImc, Command::Refresh),
            (
                BusMaster::HostImc,
                Command::RefreshBank {
                    bank: b,
                    stretch: 13,
                },
            ),
            (BusMaster::HostImc, Command::SelfRefreshEnter),
            (BusMaster::HostImc, Command::SelfRefreshExit),
            (
                BusMaster::HostImc,
                Command::ModeRegisterSet {
                    register: 6,
                    value: 0x155,
                },
            ),
            (BusMaster::HostImc, Command::ZqCalibration),
            (BusMaster::HostImc, Command::Deselect),
        ];
        for (i, (master, cmd)) in cmds.into_iter().enumerate() {
            let e = TraceEntry::observe(master, SimTime::from_ns(100 * (i as u64 + 1)), cmd, &t);
            let back = TraceEntry::from_line(&e.to_line()).expect("roundtrip");
            assert_eq!(back, e, "line was {:?}", e.to_line());
        }
    }

    #[test]
    fn malformed_trace_lines_are_rejected() {
        for bad in [
            "",
            "100",
            "100 101 host",
            "100 101 alien REF",
            "100 101 host FROB",
            "100 101 host ACT 9 0 5",
            "100 101 host REF extra",
            "100 101 nvmc RD 0 0 0 dq 5",
        ] {
            assert!(TraceEntry::from_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn recorder_take_empties_but_stays_usable() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let mut r = TraceRecorder::new();
        r.record(BusMaster::HostImc, SimTime::ZERO, Command::Refresh, &t);
        assert_eq!(r.len(), 1);
        assert_eq!(r.take().len(), 1);
        assert!(r.is_empty());
        r.record(BusMaster::HostImc, SimTime::ZERO, Command::Deselect, &t);
        assert_eq!(r.len(), 1);
    }
}
