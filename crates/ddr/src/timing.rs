//! JEDEC DDR4 timing parameters.
//!
//! The NVDIMM-C mechanism hinges on two parameters being *programmable* by
//! BIOS / the iMC (paper §II-B): the refresh cycle time **tRFC** (stretched
//! from the JEDEC 350 ns for 8 Gb devices to 1.25 µs so the NVMC gets a
//! ~900 ns exclusive window) and the refresh interval **tREFI** (7.8 µs
//! nominal, halved/quartered in the paper's sensitivity studies).

use nvdimmc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A DDR4 speed bin. The paper's test system runs the PoC DIMM at
/// 1600 MT/s (Table I) because of the PoC module's trace lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedBin {
    /// DDR4-1600: 800 MHz clock, 1.25 ns tCK.
    Ddr4_1600,
    /// DDR4-1866: 933 MHz clock.
    Ddr4_1866,
    /// DDR4-2133: 1066 MHz clock.
    Ddr4_2133,
    /// DDR4-2400: 1200 MHz clock, 0.833 ns tCK.
    Ddr4_2400,
    /// DDR4-2666: 1333 MHz clock.
    Ddr4_2666,
    /// DDR4-3200: 1600 MHz clock.
    Ddr4_3200,
}

impl SpeedBin {
    /// Clock period (tCK) in picoseconds.
    pub const fn tck_ps(self) -> u64 {
        match self {
            SpeedBin::Ddr4_1600 => 1_250,
            SpeedBin::Ddr4_1866 => 1_072,
            SpeedBin::Ddr4_2133 => 938,
            SpeedBin::Ddr4_2400 => 833,
            SpeedBin::Ddr4_2666 => 750,
            SpeedBin::Ddr4_3200 => 625,
        }
    }

    /// Data rate in mega-transfers per second.
    pub const fn mt_per_s(self) -> u64 {
        match self {
            SpeedBin::Ddr4_1600 => 1_600,
            SpeedBin::Ddr4_1866 => 1_866,
            SpeedBin::Ddr4_2133 => 2_133,
            SpeedBin::Ddr4_2400 => 2_400,
            SpeedBin::Ddr4_2666 => 2_666,
            SpeedBin::Ddr4_3200 => 3_200,
        }
    }

    /// Peak bus bandwidth in bytes/second for a 64-bit channel.
    pub const fn peak_bandwidth_bytes_per_s(self) -> u64 {
        self.mt_per_s() * 1_000_000 * 8
    }

    /// Clock period as a [`SimDuration`].
    pub fn tck(self) -> SimDuration {
        SimDuration::from_ps(self.tck_ps())
    }
}

/// How the iMC schedules refresh and how the NVMC earns its bus windows.
///
/// `RankLevel` is the paper's mechanism: one all-bank REF per tREFI with a
/// stretched tRFC, the whole rank silent while the NVMC moves data.
/// `PerBank` is the DARP/SARP-style extension (Chang et al.): one
/// single-bank refresh every tREFI/16, the NVMC confined to the refreshing
/// bank while the host keeps hitting the other fifteen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshMode {
    /// All-bank REF with a rank-wide extra-tRFC window (paper §III-B).
    /// The default: legacy runs stay bit-identical.
    #[default]
    RankLevel,
    /// Per-bank refresh windows: the iMC serves idle banks while the NVMC
    /// uses the window of the bank currently refreshing.
    PerBank,
}

/// DDR4 timing parameters, all as durations (converted from cycle counts at
/// the chosen [`SpeedBin`]).
///
/// # Example
///
/// ```
/// use nvdimmc_ddr::{SpeedBin, TimingParams};
/// use nvdimmc_sim::SimDuration;
///
/// // The paper's configuration: DDR4-1600, tRFC stretched to 1.25us.
/// let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
/// assert_eq!(t.trfc_total, SimDuration::from_ns(1250));
/// assert_eq!(t.trfc_base, SimDuration::from_ns(350));
/// assert!(t.extra_window() >= SimDuration::from_ns(890));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Speed bin the durations were derived from.
    pub speed: SpeedBin,
    /// ACTIVATE-to-internal-read/write delay.
    pub trcd: SimDuration,
    /// CAS (read) latency.
    pub tcl: SimDuration,
    /// CAS write latency.
    pub tcwl: SimDuration,
    /// PRECHARGE period.
    pub trp: SimDuration,
    /// Minimum ACTIVATE-to-PRECHARGE time.
    pub tras: SimDuration,
    /// ACTIVATE-to-ACTIVATE, different bank group.
    pub trrd_s: SimDuration,
    /// ACTIVATE-to-ACTIVATE, same bank group.
    pub trrd_l: SimDuration,
    /// Four-activate window.
    pub tfaw: SimDuration,
    /// Column-to-column delay, different bank group.
    pub tccd_s: SimDuration,
    /// Column-to-column delay, same bank group.
    pub tccd_l: SimDuration,
    /// Write recovery time (end of write burst to PRECHARGE).
    pub twr: SimDuration,
    /// Read-to-precharge delay.
    pub trtp: SimDuration,
    /// Write-to-read turnaround.
    pub twtr: SimDuration,
    /// The *device-required* refresh cycle time: the DRAM actually restores
    /// cells for this long after REF (350 ns for an 8 Gb device).
    pub trfc_base: SimDuration,
    /// The *programmed* refresh cycle time the iMC honours. NVDIMM-C
    /// stretches this beyond `trfc_base`; the surplus is the NVMC's
    /// exclusive bus window.
    pub trfc_total: SimDuration,
    /// Average refresh interval.
    pub trefi: SimDuration,
    /// Silicon refresh time for a *single* bank (per-bank refresh mode).
    /// LPDDR4-class devices quote ~140 ns for an 8 Gb die.
    pub trfc_pb: SimDuration,
    /// Programmed per-bank refresh cycle: the surplus over [`Self::trfc_pb`]
    /// is the NVMC's base window in that bank. Zero surplus (JEDEC) means
    /// per-bank mode has no window at all.
    pub trfc_pb_total: SimDuration,
    /// Dynamic window-stretch quantum: the scheduler may lengthen one
    /// per-bank window by `stretch × quantum` (stretch ≤
    /// [`Self::MAX_STRETCH`]), trading host availability in that bank for
    /// NVMC throughput.
    pub stretch_quantum: SimDuration,
    /// Exit-self-refresh to first valid command.
    pub txs: SimDuration,
    /// Burst length in transfers (BL8 for DDR4).
    pub burst_len: u32,
}

impl TimingParams {
    /// JEDEC-nominal parameters for an 8 Gb x8 device at the given bin
    /// (tRFC 350 ns, tREFI 7.8 µs, no extra window).
    pub fn jedec(speed: SpeedBin) -> Self {
        let tck = |cycles: u64| SimDuration::from_ps(cycles * speed.tck_ps());
        // Representative cycle counts for mainstream bins (CL = 11 at 1600
        // through 22 at 3200 — we scale with the bin for realism).
        let cl_cycles = match speed {
            SpeedBin::Ddr4_1600 => 11,
            SpeedBin::Ddr4_1866 => 13,
            SpeedBin::Ddr4_2133 => 15,
            SpeedBin::Ddr4_2400 => 17,
            SpeedBin::Ddr4_2666 => 19,
            SpeedBin::Ddr4_3200 => 22,
        };
        TimingParams {
            speed,
            trcd: tck(cl_cycles),
            tcl: tck(cl_cycles),
            tcwl: tck(cl_cycles.saturating_sub(2).max(9)),
            trp: tck(cl_cycles),
            tras: SimDuration::from_ns(35),
            trrd_s: tck(4).max(SimDuration::from_ns_f64(3.3)),
            trrd_l: tck(4).max(SimDuration::from_ns_f64(4.9)),
            tfaw: SimDuration::from_ns(25),
            tccd_s: tck(4),
            tccd_l: tck(5),
            twr: SimDuration::from_ns(15),
            trtp: SimDuration::from_ns_f64(7.5),
            twtr: SimDuration::from_ns_f64(7.5),
            trfc_base: SimDuration::from_ns(350),
            trfc_total: SimDuration::from_ns(350),
            trefi: SimDuration::from_us(7.8),
            trfc_pb: SimDuration::from_ns(140),
            trfc_pb_total: SimDuration::from_ns(140),
            stretch_quantum: SimDuration::ZERO,
            txs: SimDuration::from_ns(360),
            burst_len: 8,
        }
    }

    /// The paper's PoC configuration (Table I): tRFC programmed to 1000
    /// device clocks ≈ 1.25 µs at DDR4-1600, containing the 350 ns JEDEC
    /// refresh plus a ~900 ns extra window.
    pub fn nvdimmc_poc(speed: SpeedBin) -> Self {
        let mut t = Self::jedec(speed);
        t.trfc_total = SimDuration::from_ps(1000 * speed.tck_ps());
        // Per-bank counterpart: programme the single-bank refresh cycle to
        // 350 ns (210 ns surplus over the 140 ns silicon time), stretchable
        // in 60 ns quanta up to the rank-mode close (350 + 15×60 = 1250 ns).
        t.trfc_pb_total = SimDuration::from_ns(350);
        t.stretch_quantum = SimDuration::from_ns(60);
        t
    }

    /// Sets the programmed total tRFC.
    ///
    /// # Panics
    ///
    /// Panics if `trfc_total` is shorter than the device's base tRFC —
    /// the DRAM would lose cell data.
    pub fn with_trfc_total(mut self, trfc_total: SimDuration) -> Self {
        assert!(
            trfc_total >= self.trfc_base,
            "programmed tRFC must cover the device refresh time"
        );
        self.trfc_total = trfc_total;
        self
    }

    /// Sets the refresh interval (the paper's tREFI / tREFI2 / tREFI4
    /// sensitivity study uses 7.8 / 3.9 / 1.95 µs).
    ///
    /// # Panics
    ///
    /// Panics if `trefi` is not longer than the programmed tRFC (refresh
    /// would consume the entire bus).
    pub fn with_trefi(mut self, trefi: SimDuration) -> Self {
        assert!(
            trefi > self.trfc_total,
            "tREFI must exceed the programmed tRFC"
        );
        self.trefi = trefi;
        self
    }

    /// The NVMC's exclusive window per refresh: programmed tRFC minus the
    /// device's real refresh time.
    pub fn extra_window(&self) -> SimDuration {
        self.trfc_total.saturating_sub(self.trfc_base)
    }

    /// Duration of one burst (BL8) data transfer on the bus.
    pub fn burst_time(&self) -> SimDuration {
        // BL8 at double data rate = 4 clock cycles.
        SimDuration::from_ps(u64::from(self.burst_len / 2) * self.speed.tck_ps())
    }

    /// Bytes moved per burst on a 64-bit channel.
    pub const fn burst_bytes(&self) -> u64 {
        8 * self.burst_len as u64
    }

    /// Fraction of bus time consumed by refresh: tRFC_total / tREFI.
    pub fn refresh_overhead(&self) -> f64 {
        self.trfc_total / self.trefi
    }

    /// Random-access latency floor: tRCD + tCL (the budget a front-end NVM
    /// controller would have to meet; paper §III-A cites 26.64 ns at
    /// DDR4-2400).
    pub fn trcd_plus_tcl(&self) -> SimDuration {
        self.trcd + self.tcl
    }

    // --- Derived rulebook -------------------------------------------------
    // The single source of truth for every earliest-legal instant and bus
    // occupancy window. Both the inline enforcement (`SharedBus`,
    // `DramDevice`) and the offline `nvdimmc-check` linter consume these,
    // so the two implementations cannot silently diverge on the derivation.

    /// DQ-pin occupancy `[start, end)` for a column command issued at
    /// `col_at`: reads drive data tCL after the command, writes tCWL after,
    /// both for one burst.
    pub fn dq_window(&self, col_at: SimTime, is_read: bool) -> (SimTime, SimTime) {
        let start = col_at + if is_read { self.tcl } else { self.tcwl };
        (start, start + self.burst_time())
    }

    /// Minimum ACTIVATE-to-ACTIVATE spacing: tRRD_L within a bank group,
    /// tRRD_S across groups.
    pub fn act_to_act_gap(&self, same_group: bool) -> SimDuration {
        if same_group {
            self.trrd_l
        } else {
            self.trrd_s
        }
    }

    /// Minimum column-to-column spacing: tCCD_L within a bank group,
    /// tCCD_S across groups.
    pub fn col_to_col_gap(&self, same_group: bool) -> SimDuration {
        if same_group {
            self.tccd_l
        } else {
            self.tccd_s
        }
    }

    /// Earliest legal PRECHARGE for a bank activated at `last_act`, given
    /// the last READ issue instant and the last WRITE burst end (if any):
    /// tRAS, tRTP and tWR each gate it independently.
    pub fn earliest_precharge(
        &self,
        last_act: SimTime,
        last_read: Option<SimTime>,
        last_write_data_end: Option<SimTime>,
    ) -> SimTime {
        let mut e = last_act + self.tras;
        if let Some(rd) = last_read {
            e = e.max(rd + self.trtp);
        }
        if let Some(wr_end) = last_write_data_end {
            e = e.max(wr_end + self.twr);
        }
        e
    }

    /// Earliest READ after a write burst that ended at `write_data_end`
    /// (rank-wide tWTR turnaround).
    pub fn read_after_write(&self, write_data_end: SimTime) -> SimTime {
        write_data_end + self.twtr
    }

    /// When the silicon finishes restoring cells for a REFRESH issued at
    /// `ref_at` (tRFC_base later). Any non-DES command before this instant
    /// is illegal.
    pub fn refresh_silicon_ready(&self, ref_at: SimTime) -> SimTime {
        ref_at + self.trfc_base
    }

    /// The NVMC's exclusive window `[opens, closes)` for a REFRESH issued
    /// at `ref_at`: the surplus between the device refresh time and the
    /// programmed tRFC. The host stays blocked until `closes`.
    pub fn nvmc_window_bounds(&self, ref_at: SimTime) -> (SimTime, SimTime) {
        (ref_at + self.trfc_base, ref_at + self.trfc_total)
    }

    // --- Per-bank refresh rulebook ---------------------------------------

    /// Largest legal window stretch level (fits the CA encoding's address
    /// bits and caps a stretched per-bank close at the rank-mode close).
    pub const MAX_STRETCH: u8 = 15;

    /// Per-bank refresh cadence: one single-bank refresh every
    /// tREFI / 16 keeps every bank at the JEDEC average interval.
    pub fn trefi_pb(&self) -> SimDuration {
        self.trefi / u64::from(crate::command::BankAddr::COUNT)
    }

    /// Base (unstretched) NVMC window per single-bank refresh.
    pub fn extra_window_pb(&self) -> SimDuration {
        self.trfc_pb_total.saturating_sub(self.trfc_pb)
    }

    /// When the silicon finishes refreshing one bank after a per-bank
    /// refresh issued at `ref_at`.
    pub fn refresh_silicon_ready_pb(&self, ref_at: SimTime) -> SimTime {
        ref_at + self.trfc_pb
    }

    /// The NVMC's window `[opens, closes)` in the refreshing bank for a
    /// per-bank refresh issued at `ref_at` with the given stretch level:
    /// `closes = ref_at + tRFCpb_total + stretch × quantum`. The host is
    /// blocked **only in that bank** until `closes`.
    pub fn nvmc_window_bounds_pb(&self, ref_at: SimTime, stretch: u8) -> (SimTime, SimTime) {
        let stretch = stretch.min(Self::MAX_STRETCH);
        (
            ref_at + self.trfc_pb,
            ref_at + self.trfc_pb_total + self.stretch_quantum * u64::from(stretch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_1600_clock_period() {
        assert_eq!(SpeedBin::Ddr4_1600.tck_ps(), 1250);
        assert_eq!(
            SpeedBin::Ddr4_1600.peak_bandwidth_bytes_per_s(),
            12_800_000_000
        );
    }

    #[test]
    fn poc_trfc_is_1250ns() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        assert_eq!(t.trfc_total.as_ns(), 1250);
        assert_eq!(t.extra_window().as_ns(), 900);
    }

    #[test]
    fn jedec_trfc_has_no_window() {
        let t = TimingParams::jedec(SpeedBin::Ddr4_1600);
        assert_eq!(t.extra_window(), SimDuration::ZERO);
    }

    #[test]
    fn paper_frontend_latency_budget() {
        // Paper §III-A: tRCD + tCL = 26.64ns at DDR4-2400 (two 13.32ns
        // components with CL16); our CL17 model gives ~28ns — same order,
        // and the point stands: NAND (tens of us) cannot meet it.
        let t = TimingParams::jedec(SpeedBin::Ddr4_2400);
        let budget = t.trcd_plus_tcl();
        assert!(budget < SimDuration::from_ns(40));
        assert!(budget > SimDuration::from_ns(20));
    }

    #[test]
    fn burst_math() {
        let t = TimingParams::jedec(SpeedBin::Ddr4_1600);
        assert_eq!(t.burst_bytes(), 64);
        assert_eq!(t.burst_time().as_ps(), 4 * 1250);
    }

    #[test]
    fn refresh_overhead_fraction() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let f = t.refresh_overhead();
        assert!((f - 1.25 / 7.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cover the device refresh")]
    fn trfc_cannot_undershoot_device() {
        TimingParams::jedec(SpeedBin::Ddr4_1600).with_trfc_total(SimDuration::from_ns(100));
    }

    #[test]
    #[should_panic(expected = "tREFI must exceed")]
    fn trefi_must_exceed_trfc() {
        TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600).with_trefi(SimDuration::from_ns(1000));
    }

    #[test]
    fn rulebook_windows_are_consistent() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let ref_at = SimTime::from_us(1);
        let (opens, closes) = t.nvmc_window_bounds(ref_at);
        assert_eq!(opens, t.refresh_silicon_ready(ref_at));
        assert_eq!(closes.since(opens), t.extra_window());

        let col_at = SimTime::from_ns(500);
        let (rs, re) = t.dq_window(col_at, true);
        assert_eq!(rs, col_at + t.tcl);
        assert_eq!(re.since(rs), t.burst_time());
        let (ws, _) = t.dq_window(col_at, false);
        assert_eq!(ws, col_at + t.tcwl);

        assert_eq!(t.act_to_act_gap(true), t.trrd_l);
        assert_eq!(t.act_to_act_gap(false), t.trrd_s);
        assert_eq!(t.col_to_col_gap(true), t.tccd_l);
        assert_eq!(t.col_to_col_gap(false), t.tccd_s);
    }

    #[test]
    fn earliest_precharge_takes_the_latest_gate() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let act = SimTime::from_ns(100);
        // Nothing since ACT: tRAS alone.
        assert_eq!(t.earliest_precharge(act, None, None), act + t.tras);
        // A late read pushes past tRAS via tRTP.
        let rd = act + SimDuration::from_ns(40);
        assert_eq!(
            t.earliest_precharge(act, Some(rd), None),
            (act + t.tras).max(rd + t.trtp)
        );
        // A write burst end gates through tWR.
        let wr_end = act + SimDuration::from_ns(60);
        assert_eq!(
            t.earliest_precharge(act, None, Some(wr_end)),
            (act + t.tras).max(wr_end + t.twr)
        );
        assert_eq!(t.read_after_write(wr_end), wr_end + t.twtr);
    }

    #[test]
    fn per_bank_rulebook_geometry() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        assert_eq!(t.extra_window_pb(), SimDuration::from_ns(210));
        assert_eq!(t.trefi_pb() * 16, t.trefi);
        let ref_at = SimTime::from_us(3);
        let (opens, closes) = t.nvmc_window_bounds_pb(ref_at, 0);
        assert_eq!(opens, t.refresh_silicon_ready_pb(ref_at));
        assert_eq!(closes.since(opens), t.extra_window_pb());
        // Maximum stretch lands exactly on the rank-mode close.
        let (_, max_close) = t.nvmc_window_bounds_pb(ref_at, TimingParams::MAX_STRETCH);
        assert_eq!(max_close, ref_at + t.trfc_total);
        // Stretch is clamped to the encodable maximum.
        let (_, clamped) = t.nvmc_window_bounds_pb(ref_at, 200);
        assert_eq!(clamped, max_close);
    }

    #[test]
    fn jedec_has_no_per_bank_window() {
        let t = TimingParams::jedec(SpeedBin::Ddr4_1600);
        assert_eq!(t.extra_window_pb(), SimDuration::ZERO);
    }

    #[test]
    fn trefi_sweep_values() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        for (us, label) in [(7.8, "tREFI"), (3.9, "tREFI2"), (1.95, "tREFI4")] {
            let t2 = t.with_trefi(SimDuration::from_us(us));
            assert!(t2.trefi > t2.trfc_total, "{label} must still fit tRFC");
        }
    }
}
