//! The shared command/address bus between the host iMC and the NVMC.
//!
//! This is the crux of the paper (§III-B): both masters are wired to the
//! same DRAM, and nothing in DDR4 arbitrates between them. The bus model
//! therefore *detects* every way they can step on each other (Figure 2a
//! cases C1/C2) and enforces the paper's discipline (Figure 2b): the NVMC
//! may only drive the bus inside the extra-tRFC window that follows a
//! host-issued REFRESH, and must leave every bank precharged when the
//! window closes.

use crate::ca::CaPins;
use crate::command::{BankAddr, Command};
use crate::device::DramDevice;
use crate::error::BusViolation;
use crate::timing::RefreshMode;
use crate::trace::{TraceEntry, TraceRecorder};
use nvdimmc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies which master drives a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusMaster {
    /// The host integrated memory controller.
    HostImc,
    /// The NVDIMM-C internal controller (the FPGA / NVMC).
    Nvmc,
}

impl std::fmt::Display for BusMaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BusMaster::HostImc => "host iMC",
            BusMaster::Nvmc => "NVMC",
        })
    }
}

/// The refresh window the NVMC may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshWindow {
    /// When REFRESH was issued.
    pub ref_at: SimTime,
    /// End of the device's real refresh (tRFC_base): the window opens here.
    pub opens: SimTime,
    /// End of the programmed tRFC: the window closes here and the host may
    /// resume.
    pub closes: SimTime,
}

impl RefreshWindow {
    /// Whether `at` falls inside the NVMC-usable part of the window.
    pub fn contains(&self, at: SimTime) -> bool {
        at >= self.opens && at < self.closes
    }

    /// The usable window length.
    pub fn len(&self) -> SimDuration {
        self.closes.since(self.opens)
    }

    /// Whether the window has zero usable length.
    pub fn is_empty(&self) -> bool {
        self.opens >= self.closes
    }
}

/// Aggregate bus counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Commands accepted from the host iMC.
    pub host_commands: u64,
    /// Commands accepted from the NVMC.
    pub nvmc_commands: u64,
    /// REFRESH commands observed (each opens one NVMC window).
    pub refreshes: u64,
    /// Data bytes moved by the NVMC inside windows.
    pub nvmc_bytes: u64,
    /// Data bytes moved by the host.
    pub host_bytes: u64,
    /// Hazardous violations rejected (CA conflicts, NVMC outside its
    /// window, bank-state corruption) — real-hardware memory errors.
    pub violations_rejected: u64,
    /// Benign timing rejections (tCCD/tRAS/refresh blocks) that the iMC's
    /// retry-at-legal-time loop converts into waits.
    pub retries_rejected: u64,
}

impl BusStats {
    /// Accumulates another bus's counters into this one (per-shard stats
    /// aggregation in multi-channel systems).
    pub fn merge(&mut self, other: &BusStats) {
        self.host_commands += other.host_commands;
        self.nvmc_commands += other.nvmc_commands;
        self.refreshes += other.refreshes;
        self.nvmc_bytes += other.nvmc_bytes;
        self.host_bytes += other.host_bytes;
        self.violations_rejected += other.violations_rejected;
        self.retries_rejected += other.retries_rejected;
    }
}

/// The shared DDR4 bus: one [`DramDevice`], two masters, full conflict
/// detection.
///
/// # Example
///
/// ```
/// use nvdimmc_ddr::{BusMaster, Command, DramDevice, SharedBus, SpeedBin, TimingParams};
/// use nvdimmc_sim::SimTime;
///
/// let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
/// let device = DramDevice::new(timing, 1 << 27);
/// let mut bus = SharedBus::new(device);
///
/// // The NVMC may not touch the bus outside a refresh window:
/// let err = bus.issue(BusMaster::Nvmc, SimTime::from_ns(100), Command::PrechargeAll);
/// assert!(err.is_err());
/// ```
#[derive(Debug)]
pub struct SharedBus {
    device: DramDevice,
    /// CA bus occupied until this instant (one command per tCK).
    ca_busy_until: SimTime,
    last_cmd: Option<(BusMaster, Command)>,
    window: Option<RefreshWindow>,
    /// Per-bank NVMC windows (refresh-access parallelism mode): each entry
    /// is the window opened by the most recent REFpb to that bank. The
    /// host is blocked only in the refreshing bank.
    bank_windows: [Option<RefreshWindow>; BankAddr::COUNT as usize],
    /// Refresh scheduling mode; governs CA arbitration between masters.
    mode: RefreshMode,
    /// Host must stay silent until here (programmed tRFC after REF).
    host_blocked_until: SimTime,
    stats: BusStats,
    capture_ca: bool,
    ca_log: Vec<(SimTime, CaPins)>,
    prev_cke: bool,
    recorder: Option<TraceRecorder>,
}

impl SharedBus {
    /// Wraps a device in a shared bus.
    pub fn new(device: DramDevice) -> Self {
        SharedBus {
            device,
            ca_busy_until: SimTime::ZERO,
            last_cmd: None,
            window: None,
            bank_windows: [None; BankAddr::COUNT as usize],
            mode: RefreshMode::RankLevel,
            host_blocked_until: SimTime::ZERO,
            stats: BusStats::default(),
            capture_ca: false,
            ca_log: Vec::new(),
            prev_cke: true,
            recorder: None,
        }
    }

    /// Attaches a [`TraceRecorder`]: every subsequently *accepted* command
    /// is captured for offline verification by `nvdimmc-check`. Replaces
    /// any recorder already attached.
    pub fn attach_recorder(&mut self) {
        self.recorder = Some(TraceRecorder::new());
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Detaches and returns the recorder (with whatever it captured).
    pub fn detach_recorder(&mut self) -> Option<TraceRecorder> {
        self.recorder.take()
    }

    /// Takes the recorded trace, leaving the recorder attached and empty.
    /// Returns an empty trace when no recorder is attached.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.recorder
            .as_mut()
            .map_or_else(Vec::new, TraceRecorder::take)
    }

    /// Enables pin-level CA capture (consumed by the NVDIMM-C refresh
    /// detector via [`SharedBus::drain_ca_log`]).
    pub fn set_ca_capture(&mut self, on: bool) {
        self.capture_ca = on;
    }

    /// Drains captured CA samples.
    pub fn drain_ca_log(&mut self) -> Vec<(SimTime, CaPins)> {
        std::mem::take(&mut self.ca_log)
    }

    /// The underlying device.
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Mutable access to the underlying device (for data bursts and
    /// backdoor test oracles).
    pub fn device_mut(&mut self) -> &mut DramDevice {
        &mut self.device
    }

    /// Bus counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// The refresh window currently or most recently open.
    pub fn window(&self) -> Option<RefreshWindow> {
        self.window
    }

    /// Selects the refresh mode. Per-bank mode turns same-slot cross-master
    /// CA pressure into retryable arbitration (the two masters legitimately
    /// run concurrently), while rank mode keeps it a hard electrical
    /// conflict.
    pub fn set_refresh_mode(&mut self, mode: RefreshMode) {
        self.mode = mode;
    }

    /// The active refresh mode.
    pub fn refresh_mode(&self) -> RefreshMode {
        self.mode
    }

    /// The per-bank window opened by the most recent REFpb to `bank`.
    pub fn bank_window(&self, bank: BankAddr) -> Option<RefreshWindow> {
        self.bank_windows[usize::from(bank.index())]
    }

    /// Earliest instant at or after `at` when the CA bus slot is free.
    pub fn ca_free_at(&self, at: SimTime) -> SimTime {
        at.max(self.ca_busy_until)
    }

    /// Earliest instant at or after `at` when the host may issue commands
    /// (i.e. past any programmed-tRFC block).
    pub fn host_ready_at(&self, at: SimTime) -> SimTime {
        at.max(self.host_blocked_until).max(self.ca_busy_until)
    }

    /// Issues `cmd` from `master` at `at`.
    ///
    /// # Errors
    ///
    /// Returns the precise [`BusViolation`] that real hardware would have
    /// turned into a memory error. The device state is unchanged on error.
    pub fn issue(
        &mut self,
        master: BusMaster,
        at: SimTime,
        cmd: Command,
    ) -> Result<SimTime, BusViolation> {
        match self.try_issue(master, at, cmd) {
            Ok(end) => Ok(end),
            Err(v) => {
                match v {
                    BusViolation::Timing { .. } | BusViolation::CommandDuringRefresh { .. } => {
                        self.stats.retries_rejected += 1;
                    }
                    _ => self.stats.violations_rejected += 1,
                }
                Err(v)
            }
        }
    }

    fn try_issue(
        &mut self,
        master: BusMaster,
        at: SimTime,
        cmd: Command,
    ) -> Result<SimTime, BusViolation> {
        // --- CA electrical conflict (paper Figure 2a, case C1) ---
        if at < self.ca_busy_until {
            if let Some((last_master, last_cmd)) = self.last_cmd {
                // In per-bank mode both masters legitimately interleave on
                // the CA bus; slot pressure is arbitration (the loser
                // retries at the next free slot), not an electrical hazard.
                if last_master != master && self.mode == RefreshMode::RankLevel {
                    return Err(BusViolation::CaConflict {
                        at,
                        existing: last_cmd,
                        existing_master: last_master,
                        incoming: cmd,
                        incoming_master: master,
                    });
                }
                return Err(BusViolation::Timing {
                    at,
                    command: cmd,
                    parameter: "tCK",
                    legal_at: self.ca_busy_until,
                    master: Some(master),
                });
            }
        }

        // --- Protocol discipline per master ---
        match master {
            BusMaster::HostImc => {
                if at < self.host_blocked_until {
                    return Err(BusViolation::CommandDuringRefresh {
                        at,
                        busy_until: self.host_blocked_until,
                        command: cmd,
                        master: Some(master),
                    });
                }
                // Window-exit invariant: when the host first resumes after
                // a window, the NVMC must have left all banks precharged.
                // (Checked once per window; afterwards open banks are the
                // host's own doing.)
                if let Some(w) = self.window {
                    if at >= w.closes {
                        if !self.device.all_banks_idle() {
                            return Err(BusViolation::BankState {
                                at,
                                command: cmd,
                                reason: "NVMC left a bank open past its window".to_owned(),
                                master: Some(master),
                            });
                        }
                        self.window = None;
                    }
                }
                // Per-bank discipline: the host is blocked only in a bank
                // whose REFpb window is still running; bank-scoped traffic
                // to the other fifteen proceeds. Rank-scoped commands
                // (PREA, REF, SRE…) need every bank window closed.
                match cmd.bank() {
                    Some(b) => {
                        let idx = usize::from(b.index());
                        if let Some(w) = self.bank_windows[idx] {
                            if at < w.closes {
                                return Err(BusViolation::CommandDuringRefresh {
                                    at,
                                    busy_until: w.closes,
                                    command: cmd,
                                    master: Some(master),
                                });
                            }
                            // Window over: the NVMC must have left the
                            // refreshing bank precharged.
                            if !self.device.bank(b).is_idle() {
                                return Err(BusViolation::BankState {
                                    at,
                                    command: cmd,
                                    reason: format!("NVMC left {b} open past its per-bank window"),
                                    master: Some(master),
                                });
                            }
                            self.bank_windows[idx] = None;
                        }
                    }
                    None if !matches!(cmd, Command::Deselect) => {
                        if let Some(busy) = self
                            .bank_windows
                            .iter()
                            .flatten()
                            .filter(|w| at < w.closes)
                            .map(|w| w.closes)
                            .max()
                        {
                            return Err(BusViolation::CommandDuringRefresh {
                                at,
                                busy_until: busy,
                                command: cmd,
                                master: Some(master),
                            });
                        }
                    }
                    None => {}
                }
            }
            BusMaster::Nvmc => {
                // The NVMC never refreshes or self-refreshes the DRAM.
                if cmd.is_refresh_family() {
                    return Err(BusViolation::NvmcOutsideWindow { at, command: cmd });
                }
                // Legal inside the rank-wide window, or — in per-bank mode
                // — inside the window of the bank the command targets.
                let w = self
                    .window
                    .filter(|w| w.contains(at))
                    .or_else(|| {
                        cmd.bank().and_then(|b| {
                            self.bank_windows[usize::from(b.index())].filter(|w| w.contains(at))
                        })
                    })
                    .ok_or(BusViolation::NvmcOutsideWindow { at, command: cmd })?;
                // A data burst must also *complete* before the window
                // closes, or its beats would collide with host commands.
                if cmd.is_data_transfer() {
                    let is_read = matches!(cmd, Command::Read { .. });
                    let (_, data_end) = self.device.timing().dq_window(at, is_read);
                    if data_end > w.closes {
                        return Err(BusViolation::NvmcOutsideWindow { at, command: cmd });
                    }
                }
            }
        }

        // --- Silicon-level checks & effects ---
        let end = self
            .device
            .issue(at, cmd)
            .map_err(|v| v.with_master(master))?;

        // --- Post-accept bookkeeping ---
        if let Some(r) = self.recorder.as_mut() {
            r.record(master, at, cmd, self.device.timing());
        }
        let tck = self.device.timing().speed.tck();
        self.ca_busy_until = at + tck;
        self.last_cmd = Some((master, cmd));
        if self.capture_ca {
            let mut pins = CaPins::encode(&cmd);
            pins.cke_prev = self.prev_cke;
            self.prev_cke = pins.cke;
            self.ca_log.push((at, pins));
        }
        match master {
            BusMaster::HostImc => {
                self.stats.host_commands += 1;
                if cmd.is_data_transfer() {
                    self.stats.host_bytes += self.device.timing().burst_bytes();
                }
            }
            BusMaster::Nvmc => {
                self.stats.nvmc_commands += 1;
                if cmd.is_data_transfer() {
                    self.stats.nvmc_bytes += self.device.timing().burst_bytes();
                }
            }
        }
        if cmd == Command::Refresh {
            let (opens, closes) = self.device.timing().nvmc_window_bounds(at);
            self.window = Some(RefreshWindow {
                ref_at: at,
                opens,
                closes,
            });
            self.host_blocked_until = closes;
            self.stats.refreshes += 1;
        }
        if let Command::RefreshBank { bank, stretch } = cmd {
            let (opens, closes) = self.device.timing().nvmc_window_bounds_pb(at, stretch);
            self.bank_windows[usize::from(bank.index())] = Some(RefreshWindow {
                ref_at: at,
                opens,
                closes,
            });
            self.stats.refreshes += 1;
        }
        Ok(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankAddr;
    use crate::timing::{SpeedBin, TimingParams};

    const CAP: u64 = 1 << 27;

    fn bus() -> SharedBus {
        let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        SharedBus::new(DramDevice::new(timing, CAP))
    }

    fn refresh(bus: &mut SharedBus, at: SimTime) -> RefreshWindow {
        bus.issue(BusMaster::HostImc, at, Command::PrechargeAll)
            .unwrap();
        let ref_at = at + bus.device().timing().trp;
        bus.issue(BusMaster::HostImc, ref_at, Command::Refresh)
            .unwrap();
        bus.window().unwrap()
    }

    #[test]
    fn refresh_opens_window_with_paper_geometry() {
        let mut b = bus();
        let w = refresh(&mut b, SimTime::from_us(1));
        assert_eq!(w.opens.since(w.ref_at), SimDuration::from_ns(350));
        assert_eq!(w.closes.since(w.ref_at), SimDuration::from_ns(1250));
        assert_eq!(w.len(), SimDuration::from_ns(900));
    }

    #[test]
    fn host_blocked_during_programmed_trfc() {
        let mut b = bus();
        let w = refresh(&mut b, SimTime::from_us(1));
        let err = b.issue(
            BusMaster::HostImc,
            w.opens, // silicon would be ready, protocol says wait
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        );
        assert!(matches!(
            err,
            Err(BusViolation::CommandDuringRefresh { .. })
        ));
        b.issue(
            BusMaster::HostImc,
            w.closes,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        )
        .unwrap();
    }

    #[test]
    fn nvmc_rejected_outside_window() {
        let mut b = bus();
        let err = b.issue(
            BusMaster::Nvmc,
            SimTime::from_us(2),
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        );
        assert!(matches!(err, Err(BusViolation::NvmcOutsideWindow { .. })));
    }

    #[test]
    fn nvmc_allowed_inside_window() {
        let mut b = bus();
        let w = refresh(&mut b, SimTime::from_us(1));
        let t = *b.device().timing();
        b.issue(
            BusMaster::Nvmc,
            w.opens,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        )
        .unwrap();
        b.issue(
            BusMaster::Nvmc,
            w.opens + t.trcd,
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
        )
        .unwrap();
        assert_eq!(b.stats().nvmc_commands, 2);
        assert_eq!(b.stats().nvmc_bytes, 64);
    }

    #[test]
    fn nvmc_burst_must_finish_inside_window() {
        let mut b = bus();
        let w = refresh(&mut b, SimTime::from_us(1));
        let t = *b.device().timing();
        b.issue(
            BusMaster::Nvmc,
            w.opens,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        )
        .unwrap();
        // A read issued right at the close minus epsilon cannot finish.
        let late = w.closes - t.burst_time();
        let err = b.issue(
            BusMaster::Nvmc,
            late,
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
        );
        assert!(matches!(err, Err(BusViolation::NvmcOutsideWindow { .. })));
    }

    #[test]
    fn nvmc_must_precharge_before_window_closes() {
        let mut b = bus();
        let w = refresh(&mut b, SimTime::from_us(1));
        b.issue(
            BusMaster::Nvmc,
            w.opens,
            Command::Activate {
                bank: BankAddr::new(2, 2),
                row: 9,
            },
        )
        .unwrap();
        // NVMC "forgets" to precharge; host resumes after the window and
        // trips the invariant.
        let err = b.issue(
            BusMaster::HostImc,
            w.closes,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        );
        assert!(matches!(err, Err(BusViolation::BankState { .. })));
    }

    #[test]
    fn ca_conflict_between_masters_detected() {
        let mut b = bus();
        let w = refresh(&mut b, SimTime::from_us(1));
        let at = w.opens;
        b.issue(
            BusMaster::Nvmc,
            at,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        )
        .unwrap();
        // Host tries to drive the CA bus in the same cycle (and is also
        // refresh-blocked; the conflict check fires first because it is the
        // electrical hazard).
        let err = b.issue(
            BusMaster::HostImc,
            at,
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
        );
        assert!(matches!(err, Err(BusViolation::CaConflict { .. })));
    }

    #[test]
    fn nvmc_may_not_issue_refresh() {
        let mut b = bus();
        let w = refresh(&mut b, SimTime::from_us(1));
        let err = b.issue(BusMaster::Nvmc, w.opens, Command::Refresh);
        assert!(matches!(err, Err(BusViolation::NvmcOutsideWindow { .. })));
    }

    #[test]
    fn violations_do_not_mutate_state() {
        let mut b = bus();
        let before = b.device().stats();
        let _ = b.issue(BusMaster::Nvmc, SimTime::from_us(3), Command::PrechargeAll);
        assert_eq!(b.device().stats(), before);
        assert_eq!(b.stats().violations_rejected, 1);
        assert_eq!(b.stats().retries_rejected, 0);
    }

    #[test]
    fn per_bank_window_blocks_host_only_in_refreshing_bank() {
        let mut b = bus();
        b.set_refresh_mode(RefreshMode::PerBank);
        let target = BankAddr::new(1, 1);
        let t0 = SimTime::from_us(1);
        b.issue(
            BusMaster::HostImc,
            t0,
            Command::RefreshBank {
                bank: target,
                stretch: 2,
            },
        )
        .unwrap();
        let w = b.bank_window(target).unwrap();
        let t = *b.device().timing();
        assert_eq!(w.opens, t0 + t.trfc_pb);
        assert_eq!(w.closes, t0 + t.trfc_pb_total + t.stretch_quantum * 2);
        // Host into the refreshing bank: blocked until the window closes.
        let err = b.issue(
            BusMaster::HostImc,
            w.opens,
            Command::Activate {
                bank: target,
                row: 0,
            },
        );
        assert!(
            matches!(err, Err(BusViolation::CommandDuringRefresh { busy_until, .. }) if busy_until == w.closes),
            "{err:?}"
        );
        // Host into a different bank inside the window span: proceeds.
        b.issue(
            BusMaster::HostImc,
            w.opens,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 0,
            },
        )
        .unwrap();
        // Rank-scoped host command needs every bank window closed.
        let err = b.issue(
            BusMaster::HostImc,
            w.opens + t.speed.tck(),
            Command::PrechargeAll,
        );
        assert!(
            matches!(err, Err(BusViolation::CommandDuringRefresh { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn nvmc_confined_to_the_refreshing_bank() {
        let mut b = bus();
        b.set_refresh_mode(RefreshMode::PerBank);
        let target = BankAddr::new(2, 0);
        let t0 = SimTime::from_us(1);
        b.issue(
            BusMaster::HostImc,
            t0,
            Command::RefreshBank {
                bank: target,
                stretch: 0,
            },
        )
        .unwrap();
        let w = b.bank_window(target).unwrap();
        // NVMC in the refreshing bank: legal.
        b.issue(
            BusMaster::Nvmc,
            w.opens,
            Command::Activate {
                bank: target,
                row: 4,
            },
        )
        .unwrap();
        // NVMC in any other bank: outside its window.
        let err = b.issue(
            BusMaster::Nvmc,
            w.opens + b.device().timing().speed.tck(),
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 4,
            },
        );
        assert!(
            matches!(err, Err(BusViolation::NvmcOutsideWindow { .. })),
            "{err:?}"
        );
        // Close the bank before the window ends; the host then resumes in
        // that bank cleanly after the close.
        let t = *b.device().timing();
        let pre_at = w.opens + t.tras;
        assert!(pre_at < w.closes, "test premise: window fits tRAS");
        b.issue(BusMaster::Nvmc, pre_at, Command::Precharge { bank: target })
            .unwrap();
        b.issue(
            BusMaster::HostImc,
            w.closes.max(pre_at + t.trp),
            Command::Activate {
                bank: target,
                row: 0,
            },
        )
        .unwrap();
        assert_eq!(b.bank_window(target), None, "window cleared on resume");
    }

    #[test]
    fn nvmc_left_bank_open_past_per_bank_window_is_caught() {
        let mut b = bus();
        b.set_refresh_mode(RefreshMode::PerBank);
        let target = BankAddr::new(0, 3);
        let t0 = SimTime::from_us(1);
        b.issue(
            BusMaster::HostImc,
            t0,
            Command::RefreshBank {
                bank: target,
                stretch: 15,
            },
        )
        .unwrap();
        let w = b.bank_window(target).unwrap();
        b.issue(
            BusMaster::Nvmc,
            w.opens,
            Command::Activate {
                bank: target,
                row: 9,
            },
        )
        .unwrap();
        // NVMC "forgets" to precharge; the host trips the invariant when it
        // next touches that bank after the close.
        let err = b.issue(
            BusMaster::HostImc,
            w.closes,
            Command::Read {
                bank: target,
                col: 0,
                auto_precharge: false,
            },
        );
        assert!(
            matches!(err, Err(BusViolation::BankState { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn per_bank_mode_cross_master_slot_pressure_is_retryable() {
        let mut b = bus();
        b.set_refresh_mode(RefreshMode::PerBank);
        let target = BankAddr::new(1, 0);
        let t0 = SimTime::from_us(1);
        b.issue(
            BusMaster::HostImc,
            t0,
            Command::RefreshBank {
                bank: target,
                stretch: 0,
            },
        )
        .unwrap();
        let w = b.bank_window(target).unwrap();
        b.issue(
            BusMaster::Nvmc,
            w.opens,
            Command::Activate {
                bank: target,
                row: 0,
            },
        )
        .unwrap();
        // Host wants the same CA slot: arbitration, not a memory error.
        let err = b.issue(
            BusMaster::HostImc,
            w.opens,
            Command::Activate {
                bank: BankAddr::new(3, 3),
                row: 0,
            },
        );
        assert!(
            matches!(
                err,
                Err(BusViolation::Timing {
                    parameter: "tCK",
                    ..
                })
            ),
            "{err:?}"
        );
        assert_eq!(b.stats().retries_rejected, 1);
        assert_eq!(b.stats().violations_rejected, 0);
    }

    #[test]
    fn ca_capture_records_refresh_pins() {
        let mut b = bus();
        b.set_ca_capture(true);
        refresh(&mut b, SimTime::from_us(1));
        let log = b.drain_ca_log();
        assert_eq!(log.len(), 2, "PREA + REF");
        assert!(log[1].1.is_refresh_state());
        assert!(b.drain_ca_log().is_empty(), "drain empties the log");
    }

    use nvdimmc_sim::SimDuration;
}
