//! The byte-addressable backing-store abstraction.

/// A flat physical byte-addressable memory.
///
/// Both the CPU cache and the NVDIMM-C data paths move real bytes through
/// this trait so data-integrity properties are testable end-to-end.
pub trait Memory {
    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on out-of-range accesses.
    fn read(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on out-of-range accesses.
    fn write(&mut self, addr: u64, data: &[u8]);

    /// Capacity in bytes.
    fn capacity(&self) -> u64;
}

impl<M: Memory + ?Sized> Memory for &mut M {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        (**self).read(addr, buf);
    }
    fn write(&mut self, addr: u64, data: &[u8]) {
        (**self).write(addr, data);
    }
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
}

/// Dense in-RAM memory for small test footprints.
#[derive(Debug, Clone)]
pub struct VecMemory {
    bytes: Vec<u8>,
}

impl VecMemory {
    /// Allocates `capacity` zeroed bytes.
    pub fn new(capacity: usize) -> Self {
        VecMemory {
            bytes: vec![0; capacity],
        }
    }
}

impl Memory for VecMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }
    fn write(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }
    fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }
}

const FRAME: u64 = 4096;

/// Sparse memory in 4 KB frames, for multi-gigabyte address spaces.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    capacity: u64,
    frames: std::collections::HashMap<u64, Box<[u8; FRAME as usize]>>,
}

impl SparseMemory {
    /// Creates a sparse memory of `capacity` bytes (all zero).
    pub fn new(capacity: u64) -> Self {
        SparseMemory {
            capacity,
            frames: std::collections::HashMap::new(),
        }
    }

    /// Number of frames actually materialised.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }
}

impl Memory for SparseMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        assert!(
            addr + buf.len() as u64 <= self.capacity,
            "read past capacity"
        );
        let mut pos = 0;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let (frame, off) = (a / FRAME, (a % FRAME) as usize);
            let n = (FRAME as usize - off).min(buf.len() - pos);
            match self.frames.get(&frame) {
                Some(f) => buf[pos..pos + n].copy_from_slice(&f[off..off + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        assert!(
            addr + data.len() as u64 <= self.capacity,
            "write past capacity"
        );
        let mut pos = 0;
        while pos < data.len() {
            let a = addr + pos as u64;
            let (frame, off) = (a / FRAME, (a % FRAME) as usize);
            let n = (FRAME as usize - off).min(data.len() - pos);
            let f = self
                .frames
                .entry(frame)
                .or_insert_with(|| Box::new([0u8; FRAME as usize]));
            f[off..off + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_memory_roundtrip() {
        let mut m = VecMemory::new(1024);
        m.write(10, &[1, 2, 3]);
        let mut buf = [0u8; 3];
        m.read(10, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(m.capacity(), 1024);
    }

    #[test]
    fn sparse_memory_roundtrip_across_frames() {
        let mut m = SparseMemory::new(1 << 20);
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 256) as u8).collect();
        m.write(4000, &data); // straddles three frames
        let mut buf = vec![0u8; 8192];
        m.read(4000, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(m.resident_frames(), 3);
    }

    #[test]
    fn sparse_memory_reads_zero_when_untouched() {
        let mut m = SparseMemory::new(1 << 30);
        let mut buf = [0xFFu8; 64];
        m.read(1 << 29, &mut buf);
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(m.resident_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "past capacity")]
    fn sparse_memory_bounds_checked() {
        let mut m = SparseMemory::new(100);
        m.write(90, &[0u8; 20]);
    }

    #[test]
    fn mut_ref_impl_forwards() {
        fn takes_memory(m: &mut impl Memory) -> u64 {
            m.capacity()
        }
        let mut m = VecMemory::new(64);
        assert_eq!(takes_memory(&mut &mut m), 64);
    }
}
