//! The kernel physical memory map and `memmap=nn$ss` reservations.
//!
//! The nvdc driver claims its DRAM-cache address space by marking it
//! reserved at boot (paper §IV-B): "memory from ss to ss+nn-1 is excluded
//! from normal usage". This module models the map so tests can assert the
//! OS never hands reserved frames to anyone else.

use serde::{Deserialize, Serialize};

/// What a physical region is used for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// Normal kernel-managed RAM.
    SystemRam,
    /// Reserved via `memmap=nn$ss` for a named driver.
    Reserved {
        /// Owning driver (e.g. "nvdc").
        owner: String,
    },
}

/// One region of the physical map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Start physical address.
    pub base: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Usage.
    pub kind: RegionKind,
}

impl Region {
    /// Exclusive end address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes
    }

    /// Whether `addr` falls inside.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    fn overlaps(&self, base: u64, bytes: u64) -> bool {
        base < self.end() && self.base < base + bytes
    }
}

/// The physical memory map.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryMap {
    regions: Vec<Region>,
}

/// Errors manipulating the map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemmapError {
    /// The requested reservation overlaps an existing region.
    Overlap {
        /// Requested base.
        base: u64,
        /// Requested length.
        bytes: u64,
    },
    /// Zero-length region.
    Empty,
}

impl std::fmt::Display for MemmapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemmapError::Overlap { base, bytes } => {
                write!(
                    f,
                    "reservation {base:#x}+{bytes:#x} overlaps an existing region"
                )
            }
            MemmapError::Empty => write!(f, "zero-length region"),
        }
    }
}

impl std::error::Error for MemmapError {}

impl MemoryMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a System RAM range.
    ///
    /// # Errors
    ///
    /// Fails on overlap or zero length.
    pub fn add_system_ram(&mut self, base: u64, bytes: u64) -> Result<(), MemmapError> {
        self.add(base, bytes, RegionKind::SystemRam)
    }

    /// Applies a `memmap=bytes$base` style reservation for `owner`.
    ///
    /// # Errors
    ///
    /// Fails on overlap with anything other than System RAM it carves out
    /// of, or zero length. (For simplicity the model requires reservations
    /// to be declared before RAM is handed to the allocator, as the kernel
    /// parameter does.)
    pub fn reserve(&mut self, base: u64, bytes: u64, owner: &str) -> Result<(), MemmapError> {
        self.add(
            base,
            bytes,
            RegionKind::Reserved {
                owner: owner.to_owned(),
            },
        )
    }

    fn add(&mut self, base: u64, bytes: u64, kind: RegionKind) -> Result<(), MemmapError> {
        if bytes == 0 {
            return Err(MemmapError::Empty);
        }
        if self.regions.iter().any(|r| r.overlaps(base, bytes)) {
            return Err(MemmapError::Overlap { base, bytes });
        }
        self.regions.push(Region { base, bytes, kind });
        self.regions.sort_by_key(|r| r.base);
        Ok(())
    }

    /// The region containing `addr`, if any.
    pub fn find(&self, addr: u64) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Whether `addr` is usable by the OS page allocator.
    pub fn is_system_ram(&self, addr: u64) -> bool {
        matches!(
            self.find(addr),
            Some(Region {
                kind: RegionKind::SystemRam,
                ..
            })
        )
    }

    /// Whether `[addr, addr+len)` lies fully inside a reservation owned by
    /// `owner`.
    pub fn owned_by(&self, addr: u64, len: u64, owner: &str) -> bool {
        self.regions.iter().any(|r| {
            matches!(&r.kind, RegionKind::Reserved { owner: o } if o == owner)
                && addr >= r.base
                && addr + len <= r.end()
        })
    }

    /// All regions, sorted by base.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_reserves_16gb() {
        // Table I: 256 GB RAM + a 16 GB reserved window for the DRAM cache.
        let mut map = MemoryMap::new();
        map.add_system_ram(0, 128 << 30).unwrap();
        map.reserve(128 << 30, 16 << 30, "nvdc").unwrap();
        map.add_system_ram(144 << 30, 128 << 30).unwrap();
        assert!(map.is_system_ram(1 << 20));
        assert!(!map.is_system_ram((128 << 30) + 4096));
        assert!(map.owned_by(128 << 30, 16 << 30, "nvdc"));
        assert!(!map.owned_by(128 << 30, 16 << 30, "other"));
    }

    #[test]
    fn overlap_rejected() {
        let mut map = MemoryMap::new();
        map.add_system_ram(0, 1 << 20).unwrap();
        assert!(matches!(
            map.reserve(4096, 4096, "x"),
            Err(MemmapError::Overlap { .. })
        ));
    }

    #[test]
    fn zero_length_rejected() {
        let mut map = MemoryMap::new();
        assert_eq!(map.reserve(0, 0, "x"), Err(MemmapError::Empty));
    }

    #[test]
    fn find_respects_bounds() {
        let mut map = MemoryMap::new();
        map.reserve(1000, 100, "nvdc").unwrap();
        assert!(map.find(999).is_none());
        assert!(map.find(1000).is_some());
        assert!(map.find(1099).is_some());
        assert!(map.find(1100).is_none());
    }
}
