//! # nvdimmc-host — host-side substrate
//!
//! Models the pieces of the x86-64 host that NVDIMM-C's software stack
//! leans on (paper §II, §IV-B, §V-B/C):
//!
//! - [`Memory`] — a byte-addressable backing-store trait shared by the CPU
//!   cache and the devices behind it;
//! - [`CpuCache`] — a set-associative write-back cache with `clflush` /
//!   `clwb` / `invd`-style line operations and an `sfence` marker, enough
//!   to reproduce the paper's cache-incoherence scenarios and the nvdc
//!   driver's explicit-coherence protocol;
//! - [`PageTable`] / [`Tlb`] — virtual-to-physical mapping with
//!   TLB-miss/page-fault semantics, the mechanism DAX rides on;
//! - [`WritePendingQueue`] — the iMC's WPQ, whose interaction with power
//!   failure defines the platform persistence domain (§V-C);
//! - [`MemoryMap`] — the kernel `memmap=nn$ss` reservation that carves the
//!   NVDIMM-C address space out of System RAM (§IV-B);
//! - [`DaxFs`] — a minimal DAX-aware filesystem layout: files as extents
//!   of device blocks, so a file offset resolves to the block number the
//!   driver's `device_access` receives.
//!
//! # Example
//!
//! ```
//! use nvdimmc_host::{CpuCache, Memory, VecMemory};
//!
//! let mut mem = VecMemory::new(1 << 16);
//! let mut cache = CpuCache::new(4096, 4);
//! cache.store(&mut mem, 0x100, &[1, 2, 3]);
//! // The store is cached, not yet in memory:
//! let mut raw = [0u8; 3];
//! mem.read(0x100, &mut raw);
//! assert_eq!(raw, [0, 0, 0]);
//! cache.clflush(&mut mem, 0x100);
//! mem.read(0x100, &mut raw);
//! assert_eq!(raw, [1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu_cache;
pub mod dax;
pub mod journal;
pub mod memmap;
pub mod memory;
pub mod paging;
pub mod wpq;

pub use cpu_cache::{CacheStats, CpuCache};
pub use dax::{DaxFile, DaxFs};
pub use journal::PersistEvent;
pub use memmap::{MemoryMap, Region, RegionKind};
pub use memory::{Memory, SparseMemory, VecMemory};
pub use paging::{PageFault, PageTable, Pte, Tlb};
pub use wpq::WritePendingQueue;
