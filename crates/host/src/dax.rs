//! A minimal DAX-aware filesystem layout.
//!
//! The paper mounts the nvdc block device as XFS with `-o dax` (§VI).
//! What the NVDIMM-C data path actually needs from the filesystem is the
//! offset→block mapping that feeds `device_access` (§IV-B): "when an
//! application accesses a block on our device, the kernel layer of the
//! DAX-aware filesystem calls the `device_access` function to retrieve a
//! virtual address of that block". This module provides files as extents
//! of device blocks; the driver side lives in the core crate.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Errors from the DAX filesystem shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaxFsError {
    /// File already exists.
    Exists(String),
    /// File not found.
    NotFound(String),
    /// Offset beyond the file's size.
    OffsetOutOfRange {
        /// The offending byte offset.
        offset: u64,
        /// File length in bytes.
        file_bytes: u64,
    },
    /// The device has no free blocks left.
    DeviceFull,
}

impl std::fmt::Display for DaxFsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaxFsError::Exists(n) => write!(f, "file '{n}' already exists"),
            DaxFsError::NotFound(n) => write!(f, "file '{n}' not found"),
            DaxFsError::OffsetOutOfRange { offset, file_bytes } => {
                write!(f, "offset {offset} beyond file of {file_bytes} bytes")
            }
            DaxFsError::DeviceFull => write!(f, "device full"),
        }
    }
}

impl std::error::Error for DaxFsError {}

/// A file: an ordered list of device block numbers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaxFile {
    blocks: Vec<u64>,
}

impl DaxFile {
    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The device block backing file-block `index`.
    pub fn block(&self, index: usize) -> Option<u64> {
        self.blocks.get(index).copied()
    }
}

/// The filesystem: allocates device blocks to named files.
///
/// Blocks are allocated with modest extent contiguity (first-fit runs), as
/// XFS would; the NVDIMM-C driver does not care beyond the block numbers.
///
/// # Example
///
/// ```
/// use nvdimmc_host::DaxFs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fs = DaxFs::new(1 << 20, 4096); // 1 MB device
/// fs.create("data.db", 10 * 4096)?;
/// let (block, within) = fs.resolve("data.db", 4096 * 3 + 17)?;
/// assert_eq!(within, 17);
/// # let _ = block;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DaxFs {
    block_bytes: u64,
    total_blocks: u64,
    next_free: u64,
    free_list: Vec<u64>,
    files: HashMap<String, DaxFile>,
}

impl DaxFs {
    /// Creates a filesystem over a device of `device_bytes` with the given
    /// block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or exceeds the device.
    pub fn new(device_bytes: u64, block_bytes: u64) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        let total_blocks = device_bytes / block_bytes;
        assert!(total_blocks > 0, "device smaller than one block");
        DaxFs {
            block_bytes,
            total_blocks,
            next_free: 0,
            free_list: Vec::new(),
            files: HashMap::new(),
        }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        (self.total_blocks - self.next_free) + self.free_list.len() as u64
    }

    fn alloc(&mut self) -> Result<u64, DaxFsError> {
        if let Some(b) = self.free_list.pop() {
            return Ok(b);
        }
        if self.next_free < self.total_blocks {
            let b = self.next_free;
            self.next_free += 1;
            return Ok(b);
        }
        Err(DaxFsError::DeviceFull)
    }

    /// Creates a file of `bytes` (rounded up to whole blocks).
    ///
    /// # Errors
    ///
    /// Fails if the name exists or the device is full.
    pub fn create(&mut self, name: &str, bytes: u64) -> Result<(), DaxFsError> {
        if self.files.contains_key(name) {
            return Err(DaxFsError::Exists(name.to_owned()));
        }
        let nblocks = bytes.div_ceil(self.block_bytes);
        let mut blocks = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            match self.alloc() {
                Ok(b) => blocks.push(b),
                Err(e) => {
                    // Roll back partial allocation.
                    self.free_list.extend(blocks);
                    return Err(e);
                }
            }
        }
        self.files.insert(name.to_owned(), DaxFile { blocks });
        Ok(())
    }

    /// Deletes a file, freeing its blocks.
    ///
    /// # Errors
    ///
    /// Fails if the file does not exist.
    pub fn remove(&mut self, name: &str) -> Result<(), DaxFsError> {
        let f = self
            .files
            .remove(name)
            .ok_or_else(|| DaxFsError::NotFound(name.to_owned()))?;
        self.free_list.extend(f.blocks);
        Ok(())
    }

    /// Looks up a file.
    pub fn file(&self, name: &str) -> Option<&DaxFile> {
        self.files.get(name)
    }

    /// Resolves a byte offset in a file to `(device_block, offset_within)`.
    ///
    /// # Errors
    ///
    /// Fails for unknown files or offsets beyond the file.
    pub fn resolve(&self, name: &str, offset: u64) -> Result<(u64, u64), DaxFsError> {
        let f = self
            .files
            .get(name)
            .ok_or_else(|| DaxFsError::NotFound(name.to_owned()))?;
        let idx = (offset / self.block_bytes) as usize;
        match f.blocks.get(idx) {
            Some(&b) => Ok((b, offset % self.block_bytes)),
            None => Err(DaxFsError::OffsetOutOfRange {
                offset,
                file_bytes: f.blocks.len() as u64 * self.block_bytes,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve() {
        let mut fs = DaxFs::new(1 << 20, 4096);
        fs.create("a", 3 * 4096).unwrap();
        let (b0, o0) = fs.resolve("a", 0).unwrap();
        let (b2, o2) = fs.resolve("a", 2 * 4096 + 5).unwrap();
        assert_eq!(o0, 0);
        assert_eq!(o2, 5);
        assert_ne!(b0, b2);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut fs = DaxFs::new(1 << 20, 4096);
        fs.create("a", 4096).unwrap();
        assert!(matches!(fs.create("a", 4096), Err(DaxFsError::Exists(_))));
    }

    #[test]
    fn offset_bounds_checked() {
        let mut fs = DaxFs::new(1 << 20, 4096);
        fs.create("a", 4096).unwrap();
        assert!(matches!(
            fs.resolve("a", 4096),
            Err(DaxFsError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn device_full_rolls_back() {
        let mut fs = DaxFs::new(8192, 4096); // 2 blocks
        assert!(matches!(
            fs.create("big", 3 * 4096),
            Err(DaxFsError::DeviceFull)
        ));
        assert_eq!(fs.free_blocks(), 2, "partial allocation rolled back");
        fs.create("ok", 2 * 4096).unwrap();
    }

    #[test]
    fn remove_frees_blocks() {
        let mut fs = DaxFs::new(8192, 4096);
        fs.create("a", 8192).unwrap();
        assert_eq!(fs.free_blocks(), 0);
        fs.remove("a").unwrap();
        assert_eq!(fs.free_blocks(), 2);
        assert!(fs.file("a").is_none());
    }

    #[test]
    fn rounds_size_up_to_blocks() {
        let mut fs = DaxFs::new(1 << 20, 4096);
        fs.create("a", 1).unwrap();
        assert_eq!(fs.file("a").unwrap().block_count(), 1);
    }
}
