//! A set-associative write-back CPU cache with explicit-coherence line
//! operations.
//!
//! The paper's FPGA moves data underneath the CPU's caches, which "is
//! invisible to the cache and uncore hardware" (§V-B). The nvdc driver
//! therefore `clflush`es dirty lines before writebacks and invalidates
//! lines after cachefills. This model holds real bytes so both failure
//! modes — stale reads and stale write-back clobbering fresh data — are
//! directly observable in tests.

use crate::journal::PersistEvent;
use crate::memory::Memory;
use serde::{Deserialize, Serialize};

const LINE: u64 = 64;

/// Cache event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Loads that hit.
    pub load_hits: u64,
    /// Loads that missed (line filled from memory).
    pub load_misses: u64,
    /// Stores that hit.
    pub store_hits: u64,
    /// Stores that missed (write-allocate).
    pub store_misses: u64,
    /// Lines written back (evictions + clflush/clwb of dirty lines).
    pub writebacks: u64,
    /// `clflush` operations.
    pub clflushes: u64,
    /// `sfence` operations.
    pub sfences: u64,
    /// Lines dropped by `invalidate` without writeback.
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    dirty: bool,
    data: [u8; LINE as usize],
    lru: u64,
}

/// A set-associative write-back cache of 64-byte lines.
///
/// # Example
///
/// ```
/// use nvdimmc_host::{CpuCache, Memory, VecMemory};
///
/// let mut mem = VecMemory::new(4096);
/// let mut cache = CpuCache::new(1024, 2);
/// mem.write(0, &[9u8; 64]);
/// let mut buf = [0u8; 1];
/// cache.load(&mut mem, 0, &mut buf);
/// assert_eq!(buf[0], 9);
/// // Device writes behind the cache are invisible until invalidation:
/// mem.write(0, &[7u8; 64]);
/// cache.load(&mut mem, 0, &mut buf);
/// assert_eq!(buf[0], 9, "stale!");
/// cache.invalidate(0);
/// cache.load(&mut mem, 0, &mut buf);
/// assert_eq!(buf[0], 7);
/// ```
#[derive(Debug)]
pub struct CpuCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    tick: u64,
    stats: CacheStats,
    journal: Option<Vec<PersistEvent>>,
}

impl CpuCache {
    /// Creates a cache of `size_bytes` with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `ways * 64` and the
    /// resulting set count is a power of two.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(
            size_bytes.is_multiple_of(ways * LINE as usize),
            "size must be a multiple of ways*64"
        );
        let nsets = size_bytes / (ways * LINE as usize);
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        CpuCache {
            sets: vec![Vec::new(); nsets],
            ways,
            tick: 0,
            stats: CacheStats::default(),
            journal: None,
        }
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Enables (or disables) the persistence journal consumed by
    /// `nvdimmc-check`'s ordering checker. Enabling clears any previous
    /// journal.
    pub fn set_journal(&mut self, on: bool) {
        self.journal = if on { Some(Vec::new()) } else { None };
    }

    /// Appends a marker event (durability claims, power-fail points) from
    /// a higher layer. No-op when the journal is disabled.
    pub fn journal_push(&mut self, event: PersistEvent) {
        if let Some(j) = self.journal.as_mut() {
            j.push(event);
        }
    }

    /// Takes the journal contents, leaving journaling enabled and empty.
    /// Returns an empty vec when journaling is disabled.
    pub fn take_journal(&mut self) -> Vec<PersistEvent> {
        self.journal.as_mut().map_or_else(Vec::new, std::mem::take)
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr as usize) & (self.sets.len() - 1)
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Loads `buf.len()` bytes from `addr` through the cache.
    pub fn load(&mut self, mem: &mut impl Memory, addr: u64, buf: &mut [u8]) {
        self.for_each_span(
            addr,
            buf.len(),
            |cache, mem2, line_addr, off, pos, n, buf2: &mut [u8]| {
                let data = cache.line_data(mem2, line_addr, false);
                buf2[pos..pos + n].copy_from_slice(&data[off..off + n]);
            },
            mem,
            buf,
        );
    }

    /// Stores `data` to `addr` through the cache (write-allocate,
    /// write-back).
    pub fn store(&mut self, mem: &mut impl Memory, addr: u64, data: &[u8]) {
        self.journal_push(PersistEvent::Store {
            addr,
            len: data.len() as u64,
        });
        let mut scratch = data.to_vec();
        self.for_each_span(
            addr,
            data.len(),
            |cache, mem2, line_addr, off, pos, n, buf2: &mut [u8]| {
                let line = cache.line_data_mut(mem2, line_addr);
                line[off..off + n].copy_from_slice(&buf2[pos..pos + n]);
            },
            mem,
            &mut scratch,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn for_each_span<M: Memory>(
        &mut self,
        addr: u64,
        len: usize,
        mut f: impl FnMut(&mut Self, &mut M, u64, usize, usize, usize, &mut [u8]),
        mem: &mut M,
        buf: &mut [u8],
    ) {
        let mut pos = 0;
        while pos < len {
            let a = addr + pos as u64;
            let line_addr = a / LINE;
            let off = (a % LINE) as usize;
            let n = (LINE as usize - off).min(len - pos);
            f(self, mem, line_addr, off, pos, n, buf);
            pos += n;
        }
    }

    fn find(&mut self, line_addr: u64) -> Option<(usize, usize)> {
        let set = self.set_of(line_addr);
        self.sets[set]
            .iter()
            .position(|l| l.tag == line_addr)
            .map(|w| (set, w))
    }

    fn line_data(&mut self, mem: &mut impl Memory, line_addr: u64, _for_write: bool) -> [u8; 64] {
        if let Some((s, w)) = self.find(line_addr) {
            self.stats.load_hits += 1;
            let t = self.touch();
            self.sets[s][w].lru = t;
            return self.sets[s][w].data;
        }
        self.stats.load_misses += 1;

        self.fill(mem, line_addr)
    }

    fn line_data_mut<'a>(&'a mut self, mem: &mut impl Memory, line_addr: u64) -> &'a mut [u8; 64] {
        if self.find(line_addr).is_some() {
            self.stats.store_hits += 1;
        } else {
            self.stats.store_misses += 1;
            self.fill(mem, line_addr);
        }
        let (s, w) = self.find(line_addr).expect("just filled");
        let t = self.touch();
        let line = &mut self.sets[s][w];
        line.lru = t;
        line.dirty = true;
        &mut line.data
    }

    /// Fetches a line from memory, evicting the LRU way if the set is full.
    fn fill(&mut self, mem: &mut impl Memory, line_addr: u64) -> [u8; 64] {
        let set = self.set_of(line_addr);
        if self.sets[set].len() >= self.ways {
            let victim_idx = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("set non-empty");
            let victim = self.sets[set].swap_remove(victim_idx);
            if victim.dirty {
                mem.write(victim.tag * LINE, &victim.data);
                self.stats.writebacks += 1;
            }
        }
        let mut data = [0u8; 64];
        mem.read(line_addr * LINE, &mut data);
        let t = self.touch();
        self.sets[set].push(Line {
            tag: line_addr,
            dirty: false,
            data,
            lru: t,
        });
        data
    }

    /// `clflush`: writes back (if dirty) and invalidates the line holding
    /// `addr`. No-op if the line is not cached.
    pub fn clflush(&mut self, mem: &mut impl Memory, addr: u64) {
        self.stats.clflushes += 1;
        self.journal_push(PersistEvent::Clflush {
            addr: addr / LINE * LINE,
        });
        let line_addr = addr / LINE;
        if let Some((s, w)) = self.find(line_addr) {
            let line = self.sets[s].swap_remove(w);
            if line.dirty {
                mem.write(line.tag * LINE, &line.data);
                self.stats.writebacks += 1;
            }
        }
    }

    /// `clwb`: writes back (if dirty) but keeps the line resident clean.
    pub fn clwb(&mut self, mem: &mut impl Memory, addr: u64) {
        self.journal_push(PersistEvent::Clwb {
            addr: addr / LINE * LINE,
        });
        let line_addr = addr / LINE;
        if let Some((s, w)) = self.find(line_addr) {
            if self.sets[s][w].dirty {
                let data = self.sets[s][w].data;
                mem.write(line_addr * LINE, &data);
                self.sets[s][w].dirty = false;
                self.stats.writebacks += 1;
            }
        }
    }

    /// Drops the line holding `addr` **without** writeback — the driver's
    /// post-cachefill invalidation (stale-data discard).
    pub fn invalidate(&mut self, addr: u64) {
        let line_addr = addr / LINE;
        if let Some((s, w)) = self.find(line_addr) {
            self.sets[s].swap_remove(w);
            self.stats.invalidations += 1;
        }
    }

    /// Flushes every line in `[addr, addr+len)` (the driver flushes a 4 KB
    /// page as 64 clflushes).
    pub fn clflush_range(&mut self, mem: &mut impl Memory, addr: u64, len: u64) {
        let first = addr / LINE;
        let last = (addr + len - 1) / LINE;
        for line in first..=last {
            self.clflush(mem, line * LINE);
        }
    }

    /// Invalidates every line in `[addr, addr+len)`.
    pub fn invalidate_range(&mut self, addr: u64, len: u64) {
        let first = addr / LINE;
        let last = (addr + len - 1) / LINE;
        for line in first..=last {
            self.invalidate(line * LINE);
        }
    }

    /// `sfence`: in this model stores drain immediately, so the fence is a
    /// counted ordering marker.
    pub fn sfence(&mut self) {
        self.stats.sfences += 1;
        self.journal_push(PersistEvent::Sfence);
    }

    /// Writes back every dirty line and leaves the cache clean (ADR-style
    /// flush on power failure).
    pub fn flush_all(&mut self, mem: &mut impl Memory) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.dirty {
                    mem.write(line.tag * LINE, &line.data);
                    line.dirty = false;
                    self.stats.writebacks += 1;
                }
            }
        }
    }

    /// Drops every line without writeback — what a power failure does to
    /// volatile CPU caches.
    pub fn discard_all(&mut self) {
        for set in &mut self.sets {
            self.stats.invalidations += set.len() as u64;
            set.clear();
        }
    }

    /// Whether the line holding `addr` is resident and dirty.
    pub fn is_dirty(&mut self, addr: u64) -> bool {
        let line_addr = addr / LINE;
        self.find(line_addr)
            .is_some_and(|(s, w)| self.sets[s][w].dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::VecMemory;

    fn setup() -> (CpuCache, VecMemory) {
        (CpuCache::new(4096, 4), VecMemory::new(1 << 16))
    }

    #[test]
    fn store_is_write_back_not_write_through() {
        let (mut c, mut m) = setup();
        c.store(&mut m, 128, &[5u8; 64]);
        let mut raw = [0u8; 64];
        m.read(128, &mut raw);
        assert_eq!(raw, [0u8; 64], "store must stay in cache");
        assert!(c.is_dirty(128));
    }

    #[test]
    fn clflush_publishes_dirty_line() {
        let (mut c, mut m) = setup();
        c.store(&mut m, 128, &[5u8; 64]);
        c.clflush(&mut m, 128);
        let mut raw = [0u8; 64];
        m.read(128, &mut raw);
        assert_eq!(raw, [5u8; 64]);
        assert!(!c.is_dirty(128), "line gone after flush");
    }

    #[test]
    fn clwb_publishes_but_keeps_line() {
        let (mut c, mut m) = setup();
        c.store(&mut m, 0, &[3u8; 8]);
        c.clwb(&mut m, 0);
        let mut raw = [0u8; 8];
        m.read(0, &mut raw);
        assert_eq!(raw, [3u8; 8]);
        // Line still resident: a device write underneath is now invisible.
        m.write(0, &[9u8; 8]);
        let mut buf = [0u8; 8];
        c.load(&mut m, 0, &mut buf);
        assert_eq!(buf, [3u8; 8]);
    }

    #[test]
    fn paper_incoherence_scenario_stale_read() {
        // §V-B: FPGA cachefills under a line the CPU already cached.
        let (mut c, mut m) = setup();
        m.write(4096, b"old data");
        let mut buf = [0u8; 8];
        c.load(&mut m, 4096, &mut buf); // CPU caches "old data"
        m.write(4096, b"new data"); // FPGA updates DRAM under the cache
        c.load(&mut m, 4096, &mut buf);
        assert_eq!(&buf, b"old data", "CPU must see stale data");
        c.invalidate(4096); // the driver's fix
        c.load(&mut m, 4096, &mut buf);
        assert_eq!(&buf, b"new data");
    }

    #[test]
    fn paper_incoherence_scenario_stale_writeback_clobbers() {
        // §V-B: an old dirty line flushed late overwrites FPGA data.
        let (mut c, mut m) = setup();
        c.store(&mut m, 8192, b"cpu-old!");
        m.write(8192, b"fpga-new"); // device fills the page
                                    // Natural eviction (not invalidation) writes the stale line back:
        c.clflush(&mut m, 8192);
        let mut raw = [0u8; 8];
        m.read(8192, &mut raw);
        assert_eq!(&raw, b"cpu-old!", "stale writeback clobbered new data");
    }

    #[test]
    fn eviction_writes_back_dirty_victim() {
        let mut c = CpuCache::new(2 * 64, 1); // 2 sets, direct-mapped
        let mut m = VecMemory::new(1 << 16);
        c.store(&mut m, 0, &[1u8; 64]);
        // Same set (set index = line_addr & 1): line_addr 2 -> addr 128.
        c.store(&mut m, 128, &[2u8; 64]);
        let mut raw = [0u8; 64];
        m.read(0, &mut raw);
        assert_eq!(raw, [1u8; 64], "victim written back on eviction");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = CpuCache::new(2 * 64 * 2, 2); // 2 sets, 2 ways
        let mut m = VecMemory::new(1 << 16);
        let mut buf = [0u8; 1];
        // Two lines in set 0: line 0 (addr 0) and line 2 (addr 128).
        c.load(&mut m, 0, &mut buf);
        c.load(&mut m, 128, &mut buf);
        c.load(&mut m, 0, &mut buf); // re-touch line 0
        c.load(&mut m, 256, &mut buf); // evicts line 2 (LRU), not 0
        let before = c.stats().load_hits;
        c.load(&mut m, 0, &mut buf);
        assert_eq!(c.stats().load_hits, before + 1, "hot line evicted");
    }

    #[test]
    fn range_helpers_cover_pages() {
        let (mut c, mut m) = setup();
        let page = vec![0xAAu8; 4096];
        c.store(&mut m, 0, &page);
        c.clflush_range(&mut m, 0, 4096);
        assert_eq!(c.stats().clflushes, 64);
        let mut raw = vec![0u8; 4096];
        m.read(0, &mut raw);
        assert_eq!(raw, page);
    }

    #[test]
    fn unaligned_load_spans_lines() {
        let (mut c, mut m) = setup();
        m.write(60, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = [0u8; 8];
        c.load(&mut m, 60, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn sfence_counts() {
        let (mut c, _) = setup();
        c.sfence();
        c.sfence();
        assert_eq!(c.stats().sfences, 2);
    }
}
