//! The iMC write-pending queue (WPQ) and the platform persistence domain.
//!
//! On ADR platforms, stores that reached the WPQ are flushed to the DIMM
//! on power failure, so `clflush` + `sfence` suffices for persistence
//! (§V-C). NVDIMM-C *weakens* this: the FPGA's power-fail dump of the DRAM
//! cache races with the WPQ drain, so entries still in the WPQ "possibly
//! become a weak persistence domain". This model makes that race explicit
//! and testable.

use crate::memory::Memory;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One pending store.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending {
    addr: u64,
    data: Vec<u8>,
}

/// WPQ counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WpqStats {
    /// Stores accepted.
    pub enqueued: u64,
    /// Stores drained to the DIMM in normal operation.
    pub drained: u64,
    /// Stores flushed by ADR on power failure.
    pub adr_flushed: u64,
    /// Stores lost on power failure (weak persistence domain).
    pub lost: u64,
}

/// The write-pending queue inside the memory controller.
///
/// # Example
///
/// ```
/// use nvdimmc_host::{Memory, VecMemory, WritePendingQueue};
///
/// let mut mem = VecMemory::new(4096);
/// let mut wpq = WritePendingQueue::new(16);
/// wpq.enqueue(0, &[1, 2, 3]);
/// // Power fails with ADR working: the store still lands.
/// wpq.power_fail(&mut mem, true);
/// let mut buf = [0u8; 3];
/// mem.read(0, &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct WritePendingQueue {
    capacity: usize,
    queue: VecDeque<Pending>,
    stats: WpqStats,
}

impl WritePendingQueue {
    /// Creates a WPQ holding up to `capacity` stores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ capacity must be positive");
        WritePendingQueue {
            capacity,
            queue: VecDeque::new(),
            stats: WpqStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> WpqStats {
        self.stats
    }

    /// Pending store count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no stores are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Accepts a store. If full, the oldest entry is considered drained
    /// first (the iMC never drops stores in normal operation) — the caller
    /// must pass the memory to drain into via [`WritePendingQueue::drain_oldest`];
    /// here we simply report whether backpressure occurred.
    pub fn enqueue(&mut self, addr: u64, data: &[u8]) -> bool {
        self.stats.enqueued += 1;
        self.queue.push_back(Pending {
            addr,
            data: data.to_vec(),
        });
        self.queue.len() > self.capacity
    }

    /// Drains the oldest pending store into memory (normal operation).
    /// Returns `false` when empty.
    pub fn drain_oldest(&mut self, mem: &mut impl Memory) -> bool {
        match self.queue.pop_front() {
            Some(p) => {
                mem.write(p.addr, &p.data);
                self.stats.drained += 1;
                true
            }
            None => false,
        }
    }

    /// Drains everything (e.g. behind an `sfence` on a strongly-ordered
    /// platform model).
    pub fn drain_all(&mut self, mem: &mut impl Memory) {
        while self.drain_oldest(mem) {}
    }

    /// Power failure. With `adr_works`, every pending store is flushed
    /// (the platform persistence domain). Without it — the NVDIMM-C weak
    /// domain, where the FPGA's dump races the drain — pending stores are
    /// lost.
    pub fn power_fail(&mut self, mem: &mut impl Memory, adr_works: bool) {
        if adr_works {
            while let Some(p) = self.queue.pop_front() {
                mem.write(p.addr, &p.data);
                self.stats.adr_flushed += 1;
            }
        } else {
            self.stats.lost += self.queue.len() as u64;
            self.queue.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::VecMemory;

    #[test]
    fn normal_drain_applies_in_order() {
        let mut mem = VecMemory::new(64);
        let mut wpq = WritePendingQueue::new(4);
        wpq.enqueue(0, &[1]);
        wpq.enqueue(0, &[2]); // same address, later value
        wpq.drain_all(&mut mem);
        let mut b = [0u8; 1];
        mem.read(0, &mut b);
        assert_eq!(b[0], 2, "later store wins");
        assert_eq!(wpq.stats().drained, 2);
    }

    #[test]
    fn adr_flushes_on_power_fail() {
        let mut mem = VecMemory::new(64);
        let mut wpq = WritePendingQueue::new(4);
        wpq.enqueue(8, &[7]);
        wpq.power_fail(&mut mem, true);
        let mut b = [0u8; 1];
        mem.read(8, &mut b);
        assert_eq!(b[0], 7);
        assert_eq!(wpq.stats().adr_flushed, 1);
    }

    #[test]
    fn weak_domain_loses_pending_stores() {
        let mut mem = VecMemory::new(64);
        let mut wpq = WritePendingQueue::new(4);
        wpq.enqueue(8, &[7]);
        wpq.power_fail(&mut mem, false);
        let mut b = [0u8; 1];
        mem.read(8, &mut b);
        assert_eq!(b[0], 0, "store lost in the weak persistence domain");
        assert_eq!(wpq.stats().lost, 1);
    }

    #[test]
    fn backpressure_reported_when_full() {
        let mut wpq = WritePendingQueue::new(2);
        assert!(!wpq.enqueue(0, &[0]));
        assert!(!wpq.enqueue(1, &[0]));
        assert!(wpq.enqueue(2, &[0]), "third store exceeds capacity");
    }
}
