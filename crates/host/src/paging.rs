//! Virtual memory: page table and TLB.
//!
//! DAX (paper §II-A) exposes device pages straight into user address
//! space: an access faults if no PTE exists, the fault handler asks the
//! driver for a page frame (cachefill on the NVDIMM-C path), and the PTE
//! is installed. This module supplies that machinery; the driver logic
//! lives in the core crate.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Page size used throughout (4 KB, the paper's mapping granularity).
pub const PAGE_BYTES: u64 = 4096;

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pte {
    /// Physical frame number.
    pub pfn: u64,
    /// Dirty bit (set by stores).
    pub dirty: bool,
    /// Accessed bit.
    pub accessed: bool,
}

/// A page fault: no translation for the faulting virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The faulting virtual page number.
    pub vpn: u64,
}

impl std::fmt::Display for PageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page fault at vpn {:#x}", self.vpn)
    }
}

impl std::error::Error for PageFault {}

/// Paging statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingStats {
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses that found a PTE (page walk).
    pub walks: u64,
    /// Faults (no PTE).
    pub faults: u64,
}

/// A software page table: VPN → PTE.
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    entries: HashMap<u64, Pte>,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a translation.
    pub fn map(&mut self, vpn: u64, pfn: u64) {
        self.entries.insert(
            vpn,
            Pte {
                pfn,
                dirty: false,
                accessed: false,
            },
        );
    }

    /// Removes a translation, returning the old PTE.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Looks up a translation.
    pub fn get(&self, vpn: u64) -> Option<&Pte> {
        self.entries.get(&vpn)
    }

    /// Mutable lookup (to set dirty/accessed).
    pub fn get_mut(&mut self, vpn: u64) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Number of installed translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over (vpn, pte).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Pte)> {
        self.entries.iter()
    }
}

/// A fully-associative TLB with FIFO replacement.
#[derive(Debug)]
pub struct Tlb {
    capacity: usize,
    order: std::collections::VecDeque<u64>,
    map: HashMap<u64, u64>, // vpn -> pfn
    stats: PagingStats,
}

impl Tlb {
    /// Creates a TLB holding `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            capacity,
            order: std::collections::VecDeque::new(),
            map: HashMap::new(),
            stats: PagingStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> PagingStats {
        self.stats
    }

    /// Translates `vpn` via the TLB, falling back to a page walk. A miss
    /// with no PTE returns the fault for the caller's handler.
    ///
    /// # Errors
    ///
    /// Returns [`PageFault`] when no translation exists — the DAX entry
    /// point into the driver.
    pub fn translate(
        &mut self,
        table: &mut PageTable,
        vpn: u64,
        is_store: bool,
    ) -> Result<u64, PageFault> {
        if let Some(&pfn) = self.map.get(&vpn) {
            self.stats.tlb_hits += 1;
            if is_store {
                if let Some(pte) = table.get_mut(vpn) {
                    pte.dirty = true;
                }
            }
            return Ok(pfn);
        }
        match table.get_mut(vpn) {
            Some(pte) => {
                self.stats.walks += 1;
                pte.accessed = true;
                if is_store {
                    pte.dirty = true;
                }
                let pfn = pte.pfn;
                self.insert(vpn, pfn);
                Ok(pfn)
            }
            None => {
                self.stats.faults += 1;
                Err(PageFault { vpn })
            }
        }
    }

    /// Inserts a translation, evicting FIFO if full.
    pub fn insert(&mut self, vpn: u64, pfn: u64) {
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.map.entry(vpn) {
            e.insert(pfn);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.order.push_back(vpn);
        self.map.insert(vpn, pfn);
    }

    /// Drops one translation (single-page shootdown).
    pub fn flush_page(&mut self, vpn: u64) {
        if self.map.remove(&vpn).is_some() {
            self.order.retain(|&v| v != vpn);
        }
    }

    /// Drops everything (full shootdown).
    pub fn flush_all(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Resident translations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_then_map_then_hit() {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.translate(&mut pt, 7, false), Err(PageFault { vpn: 7 }));
        pt.map(7, 1234);
        assert_eq!(tlb.translate(&mut pt, 7, false), Ok(1234)); // walk
        assert_eq!(tlb.translate(&mut pt, 7, false), Ok(1234)); // TLB hit
        let s = tlb.stats();
        assert_eq!((s.faults, s.walks, s.tlb_hits), (1, 1, 1));
    }

    #[test]
    fn store_sets_dirty_bit() {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(4);
        pt.map(1, 10);
        tlb.translate(&mut pt, 1, true).unwrap();
        assert!(pt.get(1).unwrap().dirty);
        // Loads do not.
        pt.map(2, 20);
        tlb.translate(&mut pt, 2, false).unwrap();
        assert!(!pt.get(2).unwrap().dirty);
    }

    #[test]
    fn store_through_tlb_hit_still_sets_dirty() {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(4);
        pt.map(3, 30);
        tlb.translate(&mut pt, 3, false).unwrap(); // warm TLB, clean
        tlb.translate(&mut pt, 3, true).unwrap(); // dirty via hit path
        assert!(pt.get(3).unwrap().dirty);
    }

    #[test]
    fn tlb_capacity_evicts_fifo() {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(2);
        for vpn in 0..3 {
            pt.map(vpn, vpn * 10);
            tlb.translate(&mut pt, vpn, false).unwrap();
        }
        assert_eq!(tlb.len(), 2);
        // vpn 0 evicted: next translate is a walk, not a hit.
        let before = tlb.stats().walks;
        tlb.translate(&mut pt, 0, false).unwrap();
        assert_eq!(tlb.stats().walks, before + 1);
    }

    #[test]
    fn unmap_and_shootdown() {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(4);
        pt.map(5, 50);
        tlb.translate(&mut pt, 5, false).unwrap();
        pt.unmap(5);
        tlb.flush_page(5);
        assert_eq!(tlb.translate(&mut pt, 5, false), Err(PageFault { vpn: 5 }));
    }

    #[test]
    fn flush_all_clears() {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(8);
        for vpn in 0..5 {
            pt.map(vpn, vpn);
            tlb.translate(&mut pt, vpn, false).unwrap();
        }
        tlb.flush_all();
        assert!(tlb.is_empty());
    }
}
