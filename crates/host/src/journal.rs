//! Persistence-event journal: the raw material for pmemcheck-style
//! verification.
//!
//! When enabled on a [`CpuCache`](crate::CpuCache), every store, flush and
//! fence is appended to an ordered journal. Higher layers add
//! [`PersistEvent::Claim`] markers when the application declares a range
//! durable (the libpmem `persist` contract: clflush each line, then
//! sfence) and [`PersistEvent::PowerFail`] markers at simulated failure
//! points. The `nvdimmc-check` crate replays the journal and verifies
//! that every claimed range really was flushed and fenced — catching a
//! driver that "persists" without draining the CPU cache.

use serde::{Deserialize, Serialize};

/// One entry in the persistence journal, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PersistEvent {
    /// Bytes written through the CPU cache.
    Store {
        /// First byte address.
        addr: u64,
        /// Length in bytes.
        len: u64,
    },
    /// `clflush`: the line holding `addr` was written back (if dirty) and
    /// invalidated.
    Clflush {
        /// Line-aligned byte address.
        addr: u64,
    },
    /// `clwb`: the line holding `addr` was written back but kept resident.
    Clwb {
        /// Line-aligned byte address.
        addr: u64,
    },
    /// `sfence`: flushes issued before this point are globally visible.
    Sfence,
    /// The application declared `[addr, addr+len)` durable (emitted by the
    /// driver *after* its flush+fence sequence).
    Claim {
        /// First byte address.
        addr: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Simulated power failure. With `adr` true, the platform flushed
    /// in-flight state (strong persistence domain); with `adr` false,
    /// volatile cache contents were lost.
    PowerFail {
        /// Whether ADR saved the volatile state.
        adr: bool,
    },
}

/// The CPU-cache line size the journal's flush events are aligned to.
pub const JOURNAL_LINE: u64 = 64;
