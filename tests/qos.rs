//! End-to-end tests for multi-tenant QoS: per-tenant isolation,
//! SLO-aware shedding, and self-managing maintenance under fault waves.
//!
//! - the standard multi-tenant soak runs mixed-priority tenants with
//!   rotating dead-mailbox waves and continuous background maintenance,
//!   and ends with zero foreground p99 SLO breaches, no starved tenant,
//!   no shard left degraded, and a clean `check::qos` audit;
//! - the same seed reproduces the same completion digest bit-exactly;
//! - maintenance slots are preempted while foreground work is queued
//!   and run in idle windows otherwise;
//! - tenancy rides every completion on the executor path;
//! - properties: token buckets conserve tokens under arbitrary
//!   take/refill interleavings, and weighted-fair dequeue never starves
//!   a tenant (its first request's position is bounded by the batch's
//!   tenant count, not the batch length).

use nvdimmc::check::check_qos;
use nvdimmc::core::{
    ExecutorConfig, InterleaveMap, MaintenanceConfig, MaintenanceScheduler, NvdimmCConfig, ReqKind,
    ShardExecutor, ShardRequest, System, TenantId, TenantSpec, TokenBucket, WfqArbiter, PAGE_BYTES,
};
use nvdimmc::sim::{SimDuration, SimTime};
use nvdimmc::workloads::QosTestConfig;
use proptest::prelude::*;

#[test]
fn multi_tenant_soak_holds_slos_under_fault_waves() {
    let cfg = QosTestConfig::standard(4);
    let report = cfg.run().unwrap();

    // The soak actually exercised everything it claims to:
    assert!(report.waves >= 4, "only {} fault waves ran", report.waves);
    assert!(report.ops_completed > 1000, "soak barely ran: {report:?}");
    assert!(
        report.ops_throttled > 0,
        "quotas never throttled anyone — buckets not exercised"
    );
    assert!(
        report.maint.steps > 0 && report.maint.scrub_slots > 0,
        "maintenance never ran: {:?}",
        report.maint
    );
    assert!(
        report.maint.repairs_completed > 0,
        "no wave-degraded shard was repaired by maintenance: {:?}",
        report.maint
    );

    // The acceptance bars: no foreground SLO breach, nobody starved,
    // no shard left degraded, conservation clean.
    assert_eq!(
        report.foreground_breaches(),
        Vec::<TenantId>::new(),
        "foreground p99 SLO breached: {:#?}",
        report.tenants
    );
    assert_eq!(
        report.starved(),
        Vec::<TenantId>::new(),
        "starved tenants: {:#?}",
        report.tenants
    );
    assert_eq!(report.degraded_at_end, 0, "shards left degraded");
    let diags = check_qos(&report.snapshot);
    assert!(diags.is_empty(), "qos audit: {diags:?}");
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    let cfg = QosTestConfig::smoke(2);
    let a = cfg.run().unwrap();
    let b = cfg.run().unwrap();
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.ops_completed, b.ops_completed);
    assert_eq!(a.ops_throttled, b.ops_throttled);
    assert_eq!(a.maint, b.maint);
}

#[test]
fn maintenance_is_preempted_by_foreground_pressure() {
    let cfg = MaintenanceConfig::default();
    let mut devices = vec![System::new(NvdimmCConfig::small_for_tests()).unwrap()];
    devices[0].enable_scrub();
    let mut maint = MaintenanceScheduler::new(1, cfg);
    let due = SimTime::ZERO + cfg.interval;

    // Queue depth 3: the due slot must yield, not run.
    let ran = maint.run_due(&mut devices, due, |_| 3);
    assert_eq!(ran, 0);
    assert_eq!(maint.stats(0).preemptions, 1);
    assert_eq!(maint.stats(0).steps, 0);

    // The yielded slot was pushed one interval out; with the queue
    // drained it runs there.
    let ran = maint.run_due(&mut devices, due + cfg.interval, |_| 0);
    assert_eq!(ran, 1);
    assert_eq!(maint.stats(0).steps, 1);
}

#[test]
fn tenancy_rides_every_completion() {
    let map = InterleaveMap::new(2, PAGE_BYTES).unwrap();
    let mut devices = vec![
        System::new(NvdimmCConfig::small_for_tests()).unwrap(),
        System::new(NvdimmCConfig::small_for_tests()).unwrap(),
    ];
    let mut exec = ShardExecutor::new(2, ExecutorConfig::default());
    let tenant = TenantId(7);
    let data = vec![0x5Au8; PAGE_BYTES as usize];
    exec.submit_for(&map, tenant, 0, ReqKind::Write, 0, SimTime::ZERO, &data)
        .unwrap();
    exec.submit_read_for(&map, tenant, 0, PAGE_BYTES, PAGE_BYTES, SimTime::ZERO)
        .unwrap();
    // Legacy submit stays on the host tenant.
    exec.submit_read(&map, 0, 2 * PAGE_BYTES, PAGE_BYTES, SimTime::ZERO)
        .unwrap();
    let done = exec.dispatch(&mut devices);
    assert_eq!(done.len(), 3);
    let mut tenants: Vec<TenantId> = done.iter().map(|c| c.tenant).collect();
    tenants.sort();
    assert_eq!(tenants, vec![TenantId::HOST, tenant, tenant]);
}

#[test]
fn wfq_arbiter_defaults_leave_the_executor_untouched() {
    // An executor with no arbiter and one with an arbiter but a single
    // (host) tenant must produce identical completion orders.
    let map = InterleaveMap::new(1, PAGE_BYTES).unwrap();
    let run = |arbiter: bool| {
        let mut devices = vec![System::new(NvdimmCConfig::small_for_tests()).unwrap()];
        let mut exec = ShardExecutor::new(1, ExecutorConfig::default());
        if arbiter {
            exec.set_arbiter(Some(WfqArbiter::new(1, &[])));
        }
        for i in 0..8u64 {
            exec.submit_read(&map, 0, (i % 4) * PAGE_BYTES, PAGE_BYTES, SimTime::ZERO)
                .unwrap();
        }
        exec.dispatch(&mut devices)
            .into_iter()
            .map(|c| (c.seq, c.end))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(false), run(true));
}

proptest! {
    /// Token conservation: under arbitrary interleavings of takes and
    /// clock advances, `granted = consumed + expired + residual` holds
    /// at every step, and a bucket never goes negative.
    #[test]
    fn token_bucket_conserves_tokens(
        rate in prop_oneof![Just(0u64), 1_000u64..2_000_000],
        capacity in 1u64..100_000,
        ops in proptest::collection::vec((0u64..10_000, 1u64..8_192), 1..200),
    ) {
        let mut bucket = TokenBucket::new(rate, capacity);
        let mut now = SimTime::ZERO;
        let mut taken = 0u64;
        for (advance_ns, n) in ops {
            now += SimDuration::from_ns(advance_ns);
            if bucket.try_take(now, n).is_ok() {
                taken += n;
            }
            let l = bucket.ledger();
            prop_assert!(l.balanced(), "unbalanced: {l:?}");
            prop_assert_eq!(l.consumed, if rate == 0 { 0 } else { taken });
            prop_assert!(l.residual <= capacity.max(1));
        }
    }

    /// No starvation: whatever the batch composition and weights, every
    /// tenant's *first* request lands within the first `tenants` slots
    /// of the reordered batch — a flood from one tenant cannot push
    /// another tenant's head request arbitrarily far back.
    #[test]
    fn wfq_never_starves_a_tenant(
        weights in proptest::collection::vec(1u32..8, 2..5),
        floods in proptest::collection::vec(1u64..12, 2..5),
        seed in any::<u64>(),
    ) {
        let n = weights.len().min(floods.len());
        let specs: Vec<TenantSpec> = (0..n)
            .map(|i| {
                let id = TenantId(i as u16 + 1);
                if i % 2 == 0 {
                    TenantSpec::foreground(id).with_weight(weights[i])
                } else {
                    TenantSpec::background(id).with_weight(weights[i])
                }
            })
            .collect();
        let mut arb = WfqArbiter::new(1, &specs);
        // Interleave each tenant's flood deterministically from the seed.
        let mut batch: Vec<ShardRequest> = Vec::new();
        let mut remaining: Vec<u64> = floods[..n].to_vec();
        let mut seq = 0u64;
        let mut state = seed;
        while remaining.iter().any(|&r| r > 0) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % n;
            if remaining[pick] == 0 {
                continue;
            }
            remaining[pick] -= 1;
            batch.push(ShardRequest {
                seq,
                tenant: TenantId(pick as u16 + 1),
                thread: 0,
                kind: ReqKind::Read,
                local_offset: seq * PAGE_BYTES,
                len: PAGE_BYTES,
                not_before: SimTime::ZERO,
                data: Vec::new(),
            });
            seq += 1;
        }
        let present: Vec<TenantId> = {
            let mut ids: Vec<TenantId> = batch.iter().map(|r| r.tenant).collect();
            ids.dedup();
            ids.sort();
            ids.dedup();
            ids
        };
        arb.order(0, &mut batch);
        for id in present {
            let pos = batch.iter().position(|r| r.tenant == id).unwrap();
            // SFQ bound: requests ahead of tenant i's head (tag c/w_i)
            // number at most ceil(w_j/w_i) per other tenant j —
            // weight-proportional, independent of any flood's length.
            let wi = weights[usize::from(id.0) - 1];
            let bound: u32 = (0..n)
                .filter(|&j| j != usize::from(id.0) - 1)
                .map(|j| weights[j].div_ceil(wi))
                .sum();
            prop_assert!(
                pos <= bound as usize,
                "tenant {id} first served at {pos} (bound {bound}) in a {}-tenant batch of {}",
                n,
                batch.len()
            );
        }
        // FIFO within each tenant is preserved.
        for i in 0..n {
            let id = TenantId(i as u16 + 1);
            let seqs: Vec<u64> = batch.iter().filter(|r| r.tenant == id).map(|r| r.seq).collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "FIFO broken for {id}");
        }
    }
}

/// Background tenants cannot evict a foreground tenant's hot slots:
/// drive a foreground working set resident, then churn a background
/// set twice the cache size through the same shard — every foreground
/// page must still hit DRAM afterwards.
#[test]
fn background_churn_cannot_evict_foreground_hot_set() {
    let mut cfg = NvdimmCConfig::small_for_tests();
    cfg.cache_slots = 8;
    let map = InterleaveMap::new(1, PAGE_BYTES).unwrap();
    let mut devices = vec![System::new(cfg).unwrap()];
    let mut exec = ShardExecutor::new(1, ExecutorConfig::default());
    let fg = TenantSpec::foreground(TenantId(1));
    let bg = TenantSpec::background(TenantId(2));
    exec.set_arbiter(Some(WfqArbiter::new(1, &[fg, bg])));

    // Foreground makes 4 pages hot.
    for page in 0..4u64 {
        exec.submit_read_for(
            &map,
            TenantId(1),
            0,
            page * PAGE_BYTES,
            PAGE_BYTES,
            SimTime::ZERO,
        )
        .unwrap();
        exec.dispatch(&mut devices);
    }
    // Background churns 16 distinct pages through the 8-slot cache.
    for page in 4..20u64 {
        exec.submit_read_for(
            &map,
            TenantId(2),
            1,
            page * PAGE_BYTES,
            PAGE_BYTES,
            SimTime::ZERO,
        )
        .unwrap();
        exec.dispatch(&mut devices);
    }
    // Every foreground page is still resident: a re-read is a DRAM hit
    // (orders of magnitude under the Z-NAND fault path).
    let hits_before = devices[0].cache_stats().hits;
    for page in 0..4u64 {
        exec.submit_read_for(
            &map,
            TenantId(1),
            0,
            page * PAGE_BYTES,
            PAGE_BYTES,
            SimTime::ZERO,
        )
        .unwrap();
        let done = exec.dispatch(&mut devices);
        assert!(done[0].error.is_none());
    }
    let hits_after = devices[0].cache_stats().hits;
    assert_eq!(
        hits_after - hits_before,
        4,
        "foreground hot set was evicted by background churn"
    );
}

#[test]
fn smoke_report_is_printable() {
    // Keep a human-readable summary in CI logs (`--nocapture`).
    let report = QosTestConfig::smoke(2).run().unwrap();
    for t in &report.tenants {
        println!(
            "{} {:?}/{:?} completed={} failed={} throttled={} shed={} \
             p50={} p99={} (target {}) breached={} starved={}",
            t.id,
            t.priority,
            t.class,
            t.completed,
            t.failed,
            t.throttled,
            t.shed,
            t.p50,
            t.p99,
            t.target,
            t.slo_breached,
            t.starved
        );
    }
    println!(
        "waves={} completed={} failed={} throttled={} shed={} maint={:?} digest={:016x}",
        report.waves,
        report.ops_completed,
        report.ops_failed,
        report.ops_throttled,
        report.ops_shed,
        report.maint,
        report.digest
    );
    assert!(check_qos(&report.snapshot).is_empty());
}
