//! Cross-crate integration tests: the full stack — driver, CP mailbox,
//! refresh detector, shared bus, FTL, ECC, media — exercised together.

use nvdimmc::core::{
    BlockDevice, CoreError, EmulatedPmem, EvictionPolicyKind, NvdimmCConfig, PerfParams, System,
    PAGE_BYTES,
};
use nvdimmc::ddr::{SpeedBin, TimingParams};
use nvdimmc::sim::{DeterministicRng, SimDuration};
use nvdimmc::workloads::{FioJob, MixedLoad, StreamValidator};

fn page(fill: u8) -> Vec<u8> {
    vec![fill; PAGE_BYTES as usize]
}

/// Drains the recorded bus trace and runs every nvdimmc-check pass over it.
/// The integration tests double as the verifier's regression fixture: any
/// trace the simulator produces must come back with zero diagnostics.
fn assert_trace_clean(sys: &mut System) {
    let trace = sys.take_trace();
    assert!(!trace.is_empty(), "recorder captured no bus traffic");
    let report = nvdimmc::check::check_trace(&trace, &sys.config().timing);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn data_integrity_through_full_stack_under_churn() {
    // Random reads/writes with a reference model, sized to keep the
    // system constantly evicting through the CP/NAND path.
    let mut cfg = NvdimmCConfig::small_for_tests();
    cfg.cache_slots = 24;
    let mut sys = System::new(cfg).unwrap();
    sys.set_trace_capture(true);
    let pages = 96u64;
    let mut oracle: Vec<Vec<u8>> = (0..pages).map(|_| page(0)).collect();
    let mut rng = DeterministicRng::new(2026);
    for _ in 0..800 {
        let p = rng.gen_range(0..pages);
        if rng.gen_bool(0.6) {
            let mut data = page(0);
            rng.fill_bytes(&mut data);
            sys.write_at(p * PAGE_BYTES, &data).unwrap();
            oracle[p as usize] = data;
        } else {
            let mut buf = page(0);
            sys.read_at(p * PAGE_BYTES, &mut buf).unwrap();
            assert_eq!(buf, oracle[p as usize], "page {p} diverged");
        }
    }
    assert!(sys.stats().writebacks > 50, "churn must hit the NAND path");
    assert_eq!(sys.bus_stats().violations_rejected, 0);
    // Final sweep.
    for p in 0..pages {
        let mut buf = page(0);
        sys.read_at(p * PAGE_BYTES, &mut buf).unwrap();
        assert_eq!(buf, oracle[p as usize], "final sweep page {p}");
    }
    assert_trace_clean(&mut sys);
}

#[test]
fn sub_page_byte_addressability_with_eviction() {
    let mut cfg = NvdimmCConfig::small_for_tests();
    cfg.cache_slots = 8;
    let mut sys = System::new(cfg).unwrap();
    // Scatter small writes at odd offsets across many pages.
    for i in 0..32u64 {
        let payload = [i as u8; 13];
        sys.write_at(i * PAGE_BYTES + 1000 + i, &payload).unwrap();
    }
    for i in 0..32u64 {
        let mut buf = [0u8; 13];
        sys.read_at(i * PAGE_BYTES + 1000 + i, &mut buf).unwrap();
        assert_eq!(buf, [i as u8; 13], "offset write {i} corrupted");
    }
}

#[test]
fn power_failure_recovery_preserves_persisted_state() {
    let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
    sys.set_trace_capture(true);
    sys.set_persist_journal(true);
    let mut rng = DeterministicRng::new(7);
    let mut committed = Vec::new();
    for i in 0..16u64 {
        let mut data = page(0);
        rng.fill_bytes(&mut data);
        sys.write_at(i * PAGE_BYTES, &data).unwrap();
        sys.persist(i * PAGE_BYTES, PAGE_BYTES).unwrap();
        committed.push(data);
    }
    assert_trace_clean(&mut sys);
    let journal = sys.take_persist_journal();
    assert!(
        journal
            .iter()
            .any(|e| matches!(e, nvdimmc::host::PersistEvent::Claim { .. })),
        "persist() recorded no durability claims"
    );
    let persist_diags = nvdimmc::check::check_persistence(&journal);
    assert!(persist_diags.is_empty(), "{persist_diags:?}");
    let report = sys.power_fail(false).unwrap();
    assert!(report.slots_flushed >= 16);
    let mut sys = sys.into_recovered().unwrap();
    for (i, expect) in committed.iter().enumerate() {
        let mut buf = page(0);
        sys.read_at(i as u64 * PAGE_BYTES, &mut buf).unwrap();
        assert_eq!(&buf, expect, "persisted page {i} lost across power fail");
    }
}

#[test]
fn repeated_power_cycles_accumulate_no_corruption() {
    let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
    for cycle in 0..4u8 {
        let data = page(0x10 + cycle);
        sys.write_at(0, &data).unwrap();
        sys.persist(0, PAGE_BYTES).unwrap();
        sys.power_fail(cycle % 2 == 0).unwrap();
        sys = sys.into_recovered().unwrap();
        let mut buf = page(0);
        sys.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, data, "cycle {cycle}");
    }
}

#[test]
fn stream_validation_passes_on_every_policy() {
    for policy in [
        EvictionPolicyKind::Lrc,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Clock,
    ] {
        let mut cfg = NvdimmCConfig::small_for_tests().with_eviction(policy);
        cfg.cache_slots = 16;
        let mut sys = System::new(cfg).unwrap();
        let report = StreamValidator {
            elements: 8192,
            iterations: 2,
            scalar: 2.0,
        }
        .run(&mut sys)
        .unwrap();
        assert_eq!(report.mismatches, 0, "{policy:?} corrupted STREAM data");
    }
}

#[test]
fn mixed_load_full_stack() {
    let mut cfg = NvdimmCConfig::small_for_tests();
    // Records span ~8 pages; 4 slots force continuous CP traffic.
    cfg.cache_slots = 4;
    let mut sys = System::new(cfg).unwrap();
    sys.set_trace_capture(true);
    let report = MixedLoad {
        users: 120,
        records_per_user: 4,
        transactions_per_user: 4,
        seed: 5,
    }
    .run(&mut sys)
    .unwrap();
    assert_eq!(report.validation_errors, 0);
    assert!(sys.stats().cachefills > 0, "IMDB churn reached the CP path");
    assert_trace_clean(&mut sys);
}

#[test]
fn nvdimmc_never_beats_pmem_at_4k_but_wins_small() {
    // The paper's relative-performance story in one test.
    let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
    let mut pm = EmulatedPmem::new(16 << 20, timing, PerfParams::poc()).unwrap();
    let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
    let span = 4u64 << 20;
    for p in 0..span / PAGE_BYTES {
        sys.prefault(p).unwrap();
    }
    let big = FioJob::rand_read_4k(span, 800);
    let base_4k = big.run(&mut pm).unwrap().kiops();
    let nv_4k = big.run(&mut sys).unwrap().kiops();
    assert!(nv_4k < base_4k, "4K: NVDC {nv_4k:.0} vs pmem {base_4k:.0}");

    let small = FioJob {
        block_size: 128,
        ..FioJob::rand_read_4k(span, 800)
    };
    let base_s = small.run(&mut pm).unwrap().kiops();
    let nv_s = small.run(&mut sys).unwrap().kiops();
    assert!(
        nv_s > base_s,
        "128B: NVDC {nv_s:.0} must beat pmem {base_s:.0} (paper: 1.15x)"
    );
}

#[test]
fn wear_leveling_spreads_erases_under_host_churn() {
    let mut cfg = NvdimmCConfig::small_for_tests();
    cfg.cache_slots = 8;
    // Shrink the media so sustained writebacks wrap it several times.
    cfg.nvmc.ftl.geometry.blocks_per_plane = 8; // 32 blocks x 64 pages
    let mut sys = System::new(cfg).unwrap();
    let mut rng = DeterministicRng::new(9);
    let data = page(0xAA);
    for _ in 0..3_000 {
        let p = rng.gen_range(0..64);
        sys.write_at(p * PAGE_BYTES, &data).unwrap();
    }
    let ftl = sys.ftl_stats();
    assert!(ftl.gc_runs > 0, "sustained writes must trigger GC");
    assert!(
        ftl.write_amplification() < 4.0,
        "WAF {} out of control",
        ftl.write_amplification()
    );
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
    let cap = sys.capacity_bytes();
    match sys.read_at(cap, &mut [0u8; 1]) {
        Err(CoreError::OutOfRange { .. }) => {}
        other => panic!("expected OutOfRange, got {other:?}"),
    }
    // Device still usable after the error.
    sys.write_at(0, &page(1)).unwrap();
}

#[test]
fn think_time_advances_clock_without_breaking_refresh() {
    let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
    sys.set_trace_capture(true);
    sys.write_at(0, &page(1)).unwrap();
    // Jump the clock far (hours of think time), then resume I/O.
    sys.advance(SimDuration::from_secs_f64(1.0));
    let mut buf = page(0);
    sys.read_at(0, &mut buf).unwrap();
    assert_eq!(buf, page(1));
    assert_eq!(sys.bus_stats().violations_rejected, 0);
    assert_trace_clean(&mut sys);
}
