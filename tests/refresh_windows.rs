//! The paper's core safety claim (§III-B, §VII-A), tested at full-stack
//! scope: the tRFC-based serialisation lets two masters share one DDR4
//! bus without a single protocol violation, and breaking its assumptions
//! is *detected* rather than silently corrupting. Every full-stack test
//! runs under both refresh modes — rank-level all-bank REF (the paper's
//! mechanism) and per-bank windows — since the legality contract must
//! hold identically in each.

use nvdimmc::core::{BlockDevice, NvdimmCConfig, System, PAGE_BYTES};
use nvdimmc::ddr::{
    BankAddr, BusMaster, BusViolation, Command, DramDevice, RefreshMode, SharedBus, SpeedBin,
    TimingParams,
};
use nvdimmc::sim::{DeterministicRng, SimTime};

const BOTH_MODES: [RefreshMode; 2] = [RefreshMode::RankLevel, RefreshMode::PerBank];

/// Replays the recorded trace through every nvdimmc-check pass — the
/// independent verifier must agree with the inline bus enforcement that
/// the run was violation-free.
fn assert_trace_clean(sys: &mut System, mode: RefreshMode) {
    let trace = sys.take_trace();
    assert!(
        !trace.is_empty(),
        "recorder captured no bus traffic ({mode:?})"
    );
    let report = nvdimmc::check::check_trace(&trace, &sys.config().timing);
    assert!(report.is_clean(), "{mode:?}: {report}");
}

/// Asserts the mode's refresh flavour actually reached the detector:
/// per-bank runs must have snooped REFpb states, rank runs none.
fn assert_flavour_detected(sys: &System, mode: RefreshMode) {
    let d = sys.detector_stats();
    match mode {
        RefreshMode::PerBank => assert!(d.pb_detections > 0, "no REFpb snooped"),
        RefreshMode::RankLevel => assert_eq!(d.pb_detections, 0, "REFpb in rank mode"),
    }
}

#[test]
fn no_violations_across_heavy_mixed_traffic() {
    for mode in BOTH_MODES {
        let mut cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(mode);
        cfg.cache_slots = 32;
        let mut sys = System::new(cfg).unwrap();
        sys.set_trace_capture(true);
        let mut rng = DeterministicRng::new(41);
        let span = 128 * PAGE_BYTES;
        let mut buf = vec![0u8; 8192];
        for i in 0..500u64 {
            let off = rng.gen_range(0..span - 8192);
            let len = [64usize, 512, 4096, 8192][(i % 4) as usize];
            if rng.gen_bool(0.5) {
                sys.read_at(off, &mut buf[..len]).unwrap();
            } else {
                sys.write_at(off, &buf[..len]).unwrap();
            }
        }
        let bus = sys.bus_stats();
        assert_eq!(
            bus.violations_rejected, 0,
            "window discipline broke ({mode:?})"
        );
        assert!(bus.nvmc_commands > 0, "the NVMC really used the bus");
        assert!(bus.refreshes > 0);
        // The detector saw every refresh the bus carried.
        assert_eq!(sys.detector_stats().detections, bus.refreshes, "{mode:?}");
        assert_flavour_detected(&sys, mode);
        // And the offline verifier agrees with the online enforcement.
        assert_trace_clean(&mut sys, mode);
    }
}

#[test]
fn every_fpga_byte_moved_inside_a_window() {
    for mode in BOTH_MODES {
        let mut cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(mode);
        cfg.cache_slots = 8;
        let mut sys = System::new(cfg).unwrap();
        sys.set_trace_capture(true);
        let page = vec![9u8; PAGE_BYTES as usize];
        for i in 0..32u64 {
            sys.write_at(i * PAGE_BYTES, &page).unwrap();
        }
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        for i in 0..16u64 {
            sys.read_at(i * PAGE_BYTES, &mut buf).unwrap();
        }
        // If any NVMC access had fallen outside a window, the bus would
        // have rejected it and the driver would have surfaced the error;
        // reaching here with traffic on both masters is the proof.
        let bus = sys.bus_stats();
        assert!(bus.nvmc_bytes >= 16 * PAGE_BYTES, "NVMC moved real data");
        assert_eq!(bus.violations_rejected, 0, "{mode:?}");
        // Independent confirmation: every NVMC command in the trace sits
        // strictly inside a window of the mode's flavour.
        let trace = sys.take_trace();
        assert!(
            trace
                .iter()
                .any(|e| e.master == BusMaster::Nvmc && e.data.is_some()),
            "trace shows no NVMC data bursts ({mode:?})"
        );
        let report = nvdimmc::check::check_trace(&trace, &sys.config().timing);
        assert!(report.is_clean(), "{mode:?}: {report}");
    }
}

#[test]
fn rogue_nvmc_outside_window_is_caught() {
    for mode in BOTH_MODES {
        // Directly drive the bus the way a buggy/absent detector would.
        let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let mut bus = SharedBus::new(DramDevice::new(timing, 1 << 24));
        bus.set_refresh_mode(mode);
        let err = bus.issue(
            BusMaster::Nvmc,
            SimTime::from_us(5),
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 3,
            },
        );
        assert!(
            matches!(err, Err(BusViolation::NvmcOutsideWindow { .. })),
            "{mode:?}: {err:?}"
        );
    }
}

#[test]
fn jedec_trfc_gives_nvmc_no_window_at_all() {
    for mode in BOTH_MODES {
        // Without the BIOS tRFC stretch there is no NVDIMM-C: config
        // rejects in both modes (JEDEC timing also collapses tRFCpb).
        let mut cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(mode);
        cfg.timing = TimingParams::jedec(SpeedBin::Ddr4_1600);
        assert!(System::new(cfg).is_err(), "{mode:?}");
    }
}

#[test]
fn detection_accuracy_no_false_positives_over_long_run() {
    for mode in BOTH_MODES {
        // §VII-A inverted: across a long mixed run, the number of
        // detections must exactly equal the number of REFRESH commands —
        // no command pattern ever aliases into a refresh (which would let
        // the FPGA drive the bus concurrently with the host).
        let mut cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(mode);
        cfg.cache_slots = 16;
        let mut sys = System::new(cfg).unwrap();
        sys.set_trace_capture(true);
        let mut rng = DeterministicRng::new(97);
        let mut buf = vec![0u8; 4096];
        for _ in 0..400 {
            let off = rng.gen_range(0..48) * PAGE_BYTES;
            if rng.gen_bool(0.5) {
                sys.read_at(off, &mut buf).unwrap();
            } else {
                sys.write_at(off, &buf).unwrap();
            }
        }
        assert_eq!(
            sys.detector_stats().detections,
            sys.bus_stats().refreshes,
            "false positives or misses in the refresh detector ({mode:?})"
        );
        assert_flavour_detected(&sys, mode);
        assert_eq!(sys.detector_stats().sre_rejected, 0);
        assert_trace_clean(&mut sys, mode);
    }
}
