//! End-to-end tests for the shard health state machine: online repair,
//! front-end failover, and soak-level service guarantees.
//!
//! - a dead CP mailbox degrades one shard; an explicit repair quiesces
//!   it, re-handshakes the mailbox, scrubs the cache and re-admits it
//!   after a clean audit — the first attempt is deliberately starved so
//!   the interrupted-rebuild restart path runs too;
//! - with `FailoverPolicy::auto()` the front-end performs the same
//!   repair inline: after the one operation that discovers the dead
//!   mailbox, service continues with no manual intervention;
//! - rebuild transitions and post-rebuild read-back are bit-identical
//!   across same-seed reruns, on one and on four channels;
//! - a full soak that kills the mailbox of every channel in rotation
//!   ends with zero permanently degraded shards, every rebuild audited
//!   clean, byte-exact oracle read-back, and a bit-identical rerun;
//! - property: whatever the armed fault count, a shard is only ever
//!   re-admitted on the back of a rebuild report with a clean ledger.

use nvdimmc::check::{check_recovery, check_system_health};
use nvdimmc::core::{
    BlockDevice, CoreError, CpOpcode, DegradeReason, FailoverPolicy, FaultKind, HealthState,
    MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, PAGE_BYTES,
};
use nvdimmc::workloads::SoakConfig;
use proptest::prelude::*;

fn page(byte: u8) -> Vec<u8> {
    vec![byte; PAGE_BYTES as usize]
}

/// A 4-channel system with a small cache and a tight retransmit budget,
/// as in the PR 4 dead-mailbox test.
fn small_system(channels: u32, failover: FailoverPolicy) -> MultiChannelSystem {
    let mut shard = NvdimmCConfig::small_for_tests();
    shard.cache_slots = 16;
    shard.recovery.cp_timeout_windows = 64;
    shard.recovery.cp_max_retransmits = 3;
    MultiChannelSystem::new(MultiChannelConfig::new(shard, channels).with_failover(failover))
        .unwrap()
}

/// Writes shard-2 pages until the dead mailbox surfaces a `CpTimeout`,
/// leaving the shard degraded. Returns the index of the failing write.
fn degrade_shard_2(sys: &mut MultiChannelSystem) -> u64 {
    for _ in 0..8 {
        assert!(sys.shards_mut()[2].inject_fault(FaultKind::AckDrop));
    }
    for i in 0..20u64 {
        let p = 2 + 4 * i;
        match sys.write_at(p * PAGE_BYTES, &page(0x55)) {
            Ok(_) => {}
            Err(CoreError::CpTimeout { attempts: 4 }) => return i,
            other => panic!("expected CpTimeout, got {other:?}"),
        }
    }
    panic!("mailbox never died");
}

#[test]
fn explicit_repair_readmits_a_dead_mailbox_shard() {
    let mut sys = small_system(4, FailoverPolicy::default());
    degrade_shard_2(&mut sys);
    assert_eq!(sys.degraded_shards().len(), 1);

    // Eight drops were armed and the victim transaction consumed four:
    // the first repair's handshake probe is starved by the remaining
    // four and the rebuild restarts deterministically.
    match sys.repair_shard(2) {
        Err(CoreError::CpTimeout { attempts: 4 }) => {}
        other => panic!("expected the first rebuild to be starved, got {other:?}"),
    }
    assert_eq!(
        sys.degraded_shards().len(),
        1,
        "still out after a failed rebuild"
    );

    let report = sys.repair_shard(2).expect("second rebuild");
    assert!(report.readmitted);
    assert!(report.handshake_ok);
    report.audit().expect("clean rebuild ledger");
    assert!(sys.degraded_shards().is_empty());

    // The shard serves again, and what it serves is correct.
    let mut buf = page(0);
    sys.write_at(2 * PAGE_BYTES, &page(0x66)).unwrap();
    sys.read_at(2 * PAGE_BYTES, &mut buf).unwrap();
    assert_eq!(buf, page(0x66));

    // The recorded lifecycle passes the independent auditors.
    let diags = check_system_health(&sys);
    assert!(diags.is_empty(), "{diags:?}");
    let s = sys.recovery_stats();
    assert_eq!(s.rebuilds_started, 2, "{s:?}");
    assert_eq!(s.rebuilds_completed, 1, "{s:?}");
    assert_eq!(s.rebuilds_failed, 1, "{s:?}");
    let diags = check_recovery(&s);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn auto_failover_repairs_inline_and_service_continues() {
    let mut sys = small_system(4, FailoverPolicy::auto());
    let failed_at = degrade_shard_2(&mut sys);

    // No manual repair: the very next shard-2 write triggers the
    // failover path, which burns one starved rebuild, completes the
    // second, and serves the write — all inside one call.
    for i in failed_at..20u64 {
        let p = 2 + 4 * i;
        sys.write_at(p * PAGE_BYTES, &page(0x77))
            .expect("auto-repair should absorb the degradation");
    }
    assert!(sys.degraded_shards().is_empty());
    assert!(sys.health().iter().all(HealthState::is_healthy));

    let mut buf = page(0);
    for i in failed_at..20u64 {
        let p = 2 + 4 * i;
        sys.read_at(p * PAGE_BYTES, &mut buf).unwrap();
        assert_eq!(buf, page(0x77), "page {p} wrong after inline repair");
    }

    let s = sys.recovery_stats();
    assert_eq!(s.rebuilds_started, 2, "{s:?}");
    assert_eq!(s.rebuilds_completed, 1, "{s:?}");
    let diags = check_system_health(&sys);
    assert!(diags.is_empty(), "{diags:?}");
    let diags = check_recovery(&s);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn rebuild_transitions_are_bit_identical_across_reruns() {
    for channels in [1u32, 4] {
        let (r1, s1) = SoakConfig::smoke(channels).run_full().expect("soak");
        let (r2, s2) = SoakConfig::smoke(channels).run_full().expect("soak");
        assert_eq!(r1, r2, "{channels}-channel soak report diverged");
        assert_eq!(
            s1.health_logs(),
            s2.health_logs(),
            "{channels}-channel health transitions diverged"
        );
        assert_eq!(
            s1.rebuild_reports(),
            s2.rebuild_reports(),
            "{channels}-channel rebuild ledgers diverged"
        );
        assert!(r1.recovery.rebuilds_completed > 0, "soak never rebuilt");
    }
}

#[test]
fn soak_with_dead_mailbox_on_every_channel_ends_clean() {
    let cfg = SoakConfig::dead_mailbox(4);
    let (report, sys) = cfg.run_full().expect("soak");

    assert!(
        report.waves >= 4,
        "waves must rotate over all channels: {report:?}"
    );
    assert_eq!(report.degraded_at_end, 0, "{report:?}");
    assert_eq!(report.oracle_mismatches, 0, "{report:?}");
    assert_eq!(report.rejected_write_leaks, 0, "{report:?}");
    assert!(report.availability() > 0.9, "{report:?}");
    assert!(
        report.impaired.p99 >= report.healthy.p99,
        "repair time must land on impaired ops: {report:?}"
    );

    // Every shard was degraded and re-admitted at least once.
    for (i, log) in sys.health_logs().iter().enumerate() {
        assert!(
            log.iter()
                .any(|t| t.from.is_rebuilding() && t.to.is_healthy()),
            "shard {i} never completed a rebuild: {log:?}"
        );
    }

    // Independent audits: legal transitions, clean re-admissions, and a
    // balanced recovery ledger.
    let diags = check_system_health(&sys);
    assert!(diags.is_empty(), "{diags:?}");
    let diags = check_recovery(&report.recovery);
    assert!(diags.is_empty(), "{diags:?}");

    // Same seed, same soak, bit for bit.
    let (rerun, _) = cfg.run_full().expect("soak rerun");
    assert_eq!(report, rerun, "same-seed soak diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the armed fault count, a shard is only re-admitted with
    /// a clean rebuild ledger — and a shard that cannot complete its
    /// rebuild stays out.
    #[test]
    fn readmission_requires_a_clean_ledger(drops in 0u32..12, seed in 0u64..4) {
        let mut shard = NvdimmCConfig::small_for_tests();
        shard.cache_slots = 16;
        shard.recovery.cp_timeout_windows = 64;
        shard.recovery.cp_max_retransmits = 3;
        shard.seed = shard.seed.wrapping_add(seed);
        let mut sys = MultiChannelSystem::new(MultiChannelConfig::single(shard)).unwrap();
        for _ in 0..drops {
            sys.shards_mut()[0].inject_fault(FaultKind::AckDrop);
        }
        // Enough traffic to overflow the 16-slot cache and exercise the
        // armed drops; errors are expected once the budget dies.
        for p in 0..40u64 {
            let _ = sys.write_at((p % 24) * PAGE_BYTES, &page(p as u8));
        }
        for _ in 0..4 {
            match sys.repair_shard(0) {
                Ok(report) => {
                    prop_assert!(report.readmitted);
                    prop_assert!(report.audit().is_ok());
                    prop_assert!(sys.health()[0].is_healthy());
                }
                Err(_) => {
                    // Not degraded (nothing to repair) or the rebuild
                    // failed: either way the shard must not be serving
                    // half-repaired.
                    let last = sys.rebuild_reports()[0].last().cloned();
                    if sys.health()[0].is_degraded() {
                        if let Some(r) = last {
                            prop_assert!(!r.readmitted || r.audit().is_ok());
                        }
                    }
                }
            }
        }
        let diags = check_system_health(&sys);
        prop_assert!(diags.is_empty(), "{:?}", diags);
    }
}

/// Writes `shard`-owned pages (4-channel, page-granular interleave)
/// until the armed ack drops surface a `CpTimeout`, leaving the shard
/// degraded.
fn degrade_shard(sys: &mut MultiChannelSystem, shard: u64, drops: u32) {
    for _ in 0..drops {
        assert!(sys.shards_mut()[shard as usize].inject_fault(FaultKind::AckDrop));
    }
    for i in 0..20u64 {
        let p = shard + 4 * i;
        match sys.write_at(p * PAGE_BYTES, &page(0x55)) {
            Ok(_) => {}
            Err(CoreError::CpTimeout { .. }) => return,
            other => panic!("expected CpTimeout, got {other:?}"),
        }
    }
    panic!("mailbox never died");
}

#[test]
fn degraded_shards_reports_through_an_in_flight_repair() {
    let mut sys = small_system(4, FailoverPolicy::default());
    // Eight drops: four kill the victim transaction, four starve the
    // first repair's handshake probe mid-rebuild.
    degrade_shard(&mut sys, 2, 8);

    let before = sys.degraded_shards();
    assert_eq!(before.len(), 1);
    let (idx, reason, since) = before[0];
    assert_eq!(idx, 2);
    assert!(
        matches!(reason, DegradeReason::CpExhausted { .. }),
        "{reason:?}"
    );

    // The first repair attempt is interrupted in flight; the shard must
    // still be reported out of service — with the *fresh* reason and a
    // later timestamp, not the pre-repair entry.
    assert!(sys.repair_shard(2).is_err());
    let during = sys.degraded_shards();
    assert_eq!(during.len(), 1, "shard vanished from the degraded list");
    let (idx, reason, resince) = during[0];
    assert_eq!(idx, 2);
    // The fresh entry names the starved re-handshake (the Probe
    // transaction exhausting its budget), not the original write.
    assert!(
        matches!(
            reason,
            DegradeReason::RebuildInterrupted
                | DegradeReason::CpExhausted {
                    opcode: CpOpcode::Probe,
                    ..
                }
        ),
        "reason not refreshed by the aborted rebuild: {reason:?}"
    );
    assert!(resince > since, "degradation timestamp did not advance");
    // The interrupted attempt is on the ledger and was not re-admitted.
    let last = sys.rebuild_reports()[2].last().cloned().unwrap();
    assert!(!last.readmitted);

    // The second attempt completes; the report empties.
    sys.repair_shard(2).unwrap();
    assert!(sys.degraded_shards().is_empty());
    let diags = check_system_health(&sys);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn concurrent_rebuilds_readmit_in_index_order() {
    let mut sys = small_system(4, FailoverPolicy::default());
    // Degrade out of index order (3 before 1), four drops each so both
    // repairs succeed first try.
    degrade_shard(&mut sys, 3, 4);
    degrade_shard(&mut sys, 1, 4);
    let degraded: Vec<usize> = sys.degraded_shards().iter().map(|d| d.0).collect();
    assert_eq!(degraded, vec![1, 3], "degraded list not index-ordered");

    // One sweep repairs both; re-admission follows index order, not
    // degradation order.
    let readmitted = sys.repair_degraded().unwrap();
    assert_eq!(readmitted, vec![1, 3]);
    assert!(sys.health().iter().all(HealthState::is_healthy));

    // Both shards earned re-admission with clean, audited ledgers.
    for idx in [1usize, 3] {
        let report = sys.rebuild_reports()[idx].last().cloned().unwrap();
        assert!(report.readmitted, "shard {idx} not re-admitted");
        report.audit().unwrap();
    }
    // Both serve again.
    let mut buf = page(0);
    for idx in [1u64, 3] {
        sys.write_at(idx * PAGE_BYTES, &page(0x99)).unwrap();
        sys.read_at(idx * PAGE_BYTES, &mut buf).unwrap();
        assert_eq!(buf, page(0x99));
    }
    let diags = check_system_health(&sys);
    assert!(diags.is_empty(), "{diags:?}");
    let diags = check_recovery(&sys.recovery_stats());
    assert!(diags.is_empty(), "{diags:?}");
}
