//! End-to-end fault-injection and recovery tests:
//!
//! - a seeded 4-channel campaign mixing four fault classes ends with
//!   zero silent corruption, a balanced recovery ledger
//!   (`check_recovery`) and per-shard bus traces that pass the full
//!   timing/race/refresh verifier (`check_shards`);
//! - a 1-channel campaign exercises every recovery mechanism: the NAND
//!   read-retry ladder, CP-mailbox retransmit + ack replay, window-edge
//!   burst split/resume, and the cache scrub;
//! - the same seed reproduces the same campaign bit-exactly (full
//!   report equality, digest and final clock included);
//! - mid-operation power failures recover through the battery-backed
//!   dump and rebuild path;
//! - persistent NAND poisoning surfaces a typed uncorrectable error
//!   without degrading the shard;
//! - a dead CP mailbox on one shard exhausts the retransmit budget,
//!   degrades that shard alone, and leaves the other three serving.

use nvdimmc::check::{check_recovery, check_shards, Severity};
use nvdimmc::core::{
    BlockDevice, CoreError, DegradeReason, FaultKind, MultiChannelConfig, MultiChannelSystem,
    NvdimmCConfig, System, PAGE_BYTES,
};
use nvdimmc::workloads::FaultCampaign;

fn page(byte: u8) -> Vec<u8> {
    vec![byte; PAGE_BYTES as usize]
}

#[test]
fn four_channel_campaign_recovers_and_traces_verify() {
    let campaign = FaultCampaign::recoverable(4);
    let (r, traces) = campaign.run_traced(true).expect("campaign");

    // 1. No silent corruption, nothing surfaced, nothing degraded.
    assert_eq!(r.oracle_mismatches, 0, "silent corruption");
    assert_eq!(r.pages_excluded, 0, "recoverable mix surfaced a loss");
    assert_eq!(r.degraded_shards, 0);

    // 2. Every scheduled fault fired and is accounted for.
    let s = &r.recovery;
    assert_eq!(s.faults_fired, s.faults_scheduled);
    assert_eq!(s.acks_dropped, 2);
    assert_eq!(s.acks_corrupted, 2);
    assert_eq!(s.overrun_stalls, 3);
    assert_eq!(s.slots_corrupted, 3);
    assert!(s.nand_faults_injected >= 3, "{s:?}");
    assert!(s.bursts_split >= s.overrun_stalls, "{s:?}");
    assert_eq!(s.bursts_split, s.bursts_resumed, "torn transfer");
    let diags = check_recovery(s);
    assert!(diags.is_empty(), "recovery ledger unbalanced: {diags:?}");

    // 3. Every shard's full bus trace passes the independent verifier:
    //    even mid-fault, no timing violation, no CA/DQ race, no NVMC
    //    command outside its refresh window. No power faults in this
    //    mix, so the whole campaign is one boot epoch.
    assert_eq!(traces.len(), 1, "unexpected power cycle");
    let epoch = &traces[0];
    assert_eq!(epoch.len(), 4);
    let timing = NvdimmCConfig::small_for_tests().timing;
    for (shard, rep) in check_shards(epoch, &timing).iter().enumerate() {
        assert!(!epoch[shard].is_empty(), "shard {shard} captured nothing");
        assert!(rep.is_clean(), "shard {shard} trace dirty:\n{rep}");
    }
}

#[test]
fn single_channel_campaign_exercises_every_recovery_path() {
    let r = FaultCampaign::recoverable(1).run().expect("campaign");
    assert_eq!(r.oracle_mismatches, 0, "silent corruption");
    let s = &r.recovery;
    // NAND read-retry ladder rescued the transient faults.
    assert!(s.nand_read_retries >= 1, "{s:?}");
    assert!(s.nand_retry_recovered >= 1, "{s:?}");
    // The mailbox recovered lost/corrupted acks via retransmit, and the
    // FPGA replayed the completed transaction instead of re-executing it.
    assert!(s.cp_attempt_timeouts >= 1, "{s:?}");
    assert!(s.cp_retransmits >= 1, "{s:?}");
    assert!(s.replayed_acks >= 1, "{s:?}");
    assert!(s.cp_recovered >= 1, "{s:?}");
    // Window overruns split bursts that later resumed.
    assert!(s.bursts_split >= 1, "{s:?}");
    assert_eq!(s.bursts_split, s.bursts_resumed);
    // The scrub saw the injected slot corruption and resolved it.
    assert!(s.scrub_detected >= 1, "{s:?}");
    assert_eq!(
        s.scrub_detected,
        s.scrub_refills + s.scrub_dropped_clean + s.cache_corruption_surfaced
    );
    assert_eq!(s.cp_transactions_failed, 0);
    assert_eq!(s.degraded_entries, 0);
}

#[test]
fn same_seed_campaign_is_bit_identical() {
    let campaign = FaultCampaign::recoverable(2);
    let a = campaign.run().expect("first run");
    let b = campaign.run().expect("second run");
    // Full-report equality: same counters, same recovery ledger, same
    // read-back digest, same final simulated clock.
    assert_eq!(a, b, "same-seed campaign diverged");
    // And a different seed really does change the outcome.
    let c = campaign.with_seed(0xD1FF_5EED).run().expect("third run");
    assert_ne!(a.final_clock, c.final_clock, "seed had no effect");
}

#[test]
fn power_failures_mid_campaign_recover_via_rebuild() {
    let (r, epochs) = FaultCampaign::recoverable(2)
        .with_power_fails(2)
        .run_traced(true)
        .expect("campaign");
    assert_eq!(r.power_cycles, 2, "each scheduled power fail cycles once");
    assert_eq!(r.oracle_mismatches, 0, "data lost across a power cycle");
    let s = &r.recovery;
    assert_eq!(s.power_fails_fired, 2);
    assert_eq!(s.power_fails_recovered, 2);
    let errors: Vec<_> = check_recovery(s)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "recovery ledger unbalanced: {errors:?}");
    // Each reboot restarts the simulated clock, so each boot epoch is a
    // standalone trace — and every one passes the full verifier.
    assert_eq!(epochs.len() as u64, r.power_cycles + 1);
    let timing = NvdimmCConfig::small_for_tests().timing;
    for (e, epoch) in epochs.iter().enumerate() {
        for (shard, rep) in check_shards(epoch, &timing).iter().enumerate() {
            assert!(rep.is_clean(), "epoch {e} shard {shard} dirty:\n{rep}");
        }
    }
}

#[test]
fn persistent_uncorrectable_surfaces_typed_error_without_degrading() {
    let mut cfg = NvdimmCConfig::small_for_tests();
    cfg.cache_slots = 16;
    let mut s = System::new(cfg).unwrap();

    // Write the victim page, then enough others that it is evicted to
    // Z-NAND and the NVMC write buffer drains to media.
    s.write_at(0, &page(0xAB)).unwrap();
    for p in 1..48u64 {
        s.write_at(p * PAGE_BYTES, &page(p as u8)).unwrap();
    }
    assert!(s.inject_fault(FaultKind::NandPersistent));

    // The cachefill's media read exhausts the whole retry ladder and the
    // FPGA nacks with the uncorrectable code — a typed loss, not a hang.
    let mut buf = page(0);
    match s.read_at(0, &mut buf) {
        Err(CoreError::MediaFailed { page, .. }) => assert_eq!(page, 0),
        other => panic!("expected MediaFailed, got {other:?}"),
    }
    let stats = s.recovery_stats();
    assert!(stats.nand_uncorrectable_surfaced >= 1, "{stats:?}");
    assert!(stats.nand_errors_nacked >= 1, "{stats:?}");
    // A delivered verdict is not a mailbox failure: the shard keeps
    // serving everything else.
    assert!(!s.is_degraded());
    s.read_at(47 * PAGE_BYTES, &mut buf).unwrap();
    assert_eq!(buf, page(47), "healthy page damaged by the poisoned one");
}

#[test]
fn dead_mailbox_degrades_one_shard_others_keep_serving() {
    let mut shard = NvdimmCConfig::small_for_tests();
    shard.cache_slots = 16;
    shard.recovery.cp_timeout_windows = 64;
    shard.recovery.cp_max_retransmits = 3;
    let mut sys = MultiChannelSystem::new(MultiChannelConfig::new(shard, 4)).unwrap();

    // Kill shard 2's mailbox: more armed ack drops than the retransmit
    // budget (1 + 3 retries) can absorb.
    for _ in 0..8 {
        assert!(sys.shards_mut()[2].inject_fault(FaultKind::AckDrop));
    }

    // Pages 2, 6, 10, ... all land on shard 2; the 17th write overflows
    // its 16-slot cache and the eviction writeback needs the dead
    // mailbox.
    let mut failure = None;
    for i in 0..20u64 {
        let p = 2 + 4 * i;
        if let Err(e) = sys.write_at(p * PAGE_BYTES, &page(0x55)) {
            failure = Some((i, e));
            break;
        }
    }
    match failure {
        Some((i, CoreError::CpTimeout { attempts })) => {
            assert_eq!(attempts, 4, "1 initial attempt + 3 retransmits");
            assert_eq!(i, 16, "first eviction writeback should fail");
        }
        other => panic!("expected CpTimeout on shard 2, got {other:?}"),
    }

    // Exactly shard 2 is degraded and rejects further writes...
    let degraded = sys.degraded_shards();
    assert_eq!(degraded.len(), 1);
    assert_eq!(degraded[0].0, 2);
    assert!(
        matches!(
            degraded[0].1,
            DegradeReason::CpExhausted { attempts: 4, .. }
        ),
        "expected CP exhaustion after 4 attempts, got {:?}",
        degraded[0].1
    );
    match sys.write_at((2 + 4 * 17) * PAGE_BYTES, &page(0x66)) {
        Err(CoreError::DegradedShard { .. }) => {}
        other => panic!("expected DegradedShard, got {other:?}"),
    }
    // ...while the other three shards still serve reads and writes.
    let mut buf = page(0);
    for p in [0u64, 1, 3] {
        sys.write_at(p * PAGE_BYTES, &page(0x77)).unwrap();
        sys.read_at(p * PAGE_BYTES, &mut buf).unwrap();
        assert_eq!(buf, page(0x77), "healthy shard {p} misbehaved");
    }
    let s = sys.recovery_stats();
    assert_eq!(s.cp_transactions_failed, 1, "{s:?}");
    assert_eq!(s.degraded_entries, 1, "{s:?}");
    assert!(s.cp_attempt_timeouts >= 4, "{s:?}");
}

#[test]
fn long_retransmit_ladders_survive_a_mailbox_fault_storm() {
    // The nvdimmc-model checker's stale-ack counterexample, driven end
    // to end: with a 15-attempt retransmit ladder, attempt 15 of one
    // transaction reuses the 4-bit mailbox phase under which the
    // *previous* transaction's ack still sits in persistent DRAM. Under
    // phase-only ack matching the driver accepted that stale ack for a
    // writeback the FPGA never executed (the minimized schedule is
    // committed at tests/model_corpus/stale_ack_phase_alias.schedule);
    // the shipped protocol matches the ack's echoed sequence number
    // too. This campaign arms every mailbox fault class — mangled
    // command captures, dropped acks, corrupted acks — against
    // 15-attempt ladders and requires byte-exact data with a balanced
    // recovery ledger.
    use nvdimmc::core::RecoveryParams;
    let campaign = FaultCampaign {
        channels: 1,
        faults: vec![
            (FaultKind::CmdCorrupt, 6),
            (FaultKind::AckDrop, 6),
            (FaultKind::AckCorrupt, 6),
        ],
        ..FaultCampaign::recoverable(1)
    }
    .with_recovery(RecoveryParams {
        cp_timeout_windows: 512,
        cp_max_retransmits: 14,
        cp_backoff: 1,
        ..RecoveryParams::default()
    });
    let r = campaign.run().expect("campaign");

    assert_eq!(r.oracle_mismatches, 0, "a stale ack reached the data path");
    assert_eq!(
        r.pages_excluded, 0,
        "mailbox faults must all be transparent"
    );
    assert_eq!(
        r.degraded_shards, 0,
        "a 15-attempt ladder must outlast 1-shot faults"
    );
    let s = &r.recovery;
    assert_eq!(s.faults_fired, s.faults_scheduled, "{s:?}");
    assert_eq!(s.cmd_decode_failures, 6, "{s:?}");
    assert_eq!(s.acks_dropped, 6, "{s:?}");
    assert_eq!(s.acks_corrupted, 6, "{s:?}");
    // Every loss cost a visible attempt timeout and a retransmit; the
    // FPGA answered retransmits of executed commands by replaying the
    // ack (same txn key), never by re-executing.
    assert!(s.cp_attempt_timeouts >= 18, "{s:?}");
    assert!(s.cp_retransmits >= 18, "{s:?}");
    assert!(s.cp_recovered >= 1, "{s:?}");
    assert_eq!(s.cp_transactions_failed, 0, "{s:?}");
    let diags = check_recovery(s);
    assert!(diags.is_empty(), "recovery ledger unbalanced: {diags:?}");
}
