//! Crash-point sweep: bounded-exhaustive power-cut torture (tier 1).
//!
//! Every crash boundary of a small mixed read/write/persist/maintenance
//! workload — bus ops, CP mailbox windows, NVMC burst edges (rank-level
//! *and* per-bank refresh), maintenance slots — is armed in turn; the
//! run is cut there, recovered through the battery-backed dump +
//! snapshot/restore reboot path, and audited by the `check_crash`
//! persistence oracle. With ADR intact every boundary must come back
//! clean, bit-identically across reruns. With the weak persistence
//! domain (`adr_works = false`, paper §V-C) specific boundaries tear —
//! those schedules are shrunk to 1-minimal artifacts and committed
//! under `tests/crash_corpus/`, replayed here as regressions.

use nvdimmc_core::CrashPointKind;
use nvdimmc_workloads::{CrashOp, CrashSweep, Sampling};

/// Every committed crash-corpus artifact, replayed as a regression.
const CORPUS: &[(&str, &str)] = &[
    (
        "torn_persist_weak_adr.schedule",
        include_str!("crash_corpus/torn_persist_weak_adr.schedule"),
    ),
    (
        "cross_shard_torn_persist.schedule",
        include_str!("crash_corpus/cross_shard_torn_persist.schedule"),
    ),
];

fn assert_clean_and_reproducible(sweep: CrashSweep) {
    let a = sweep.sweep().expect("sweep");
    assert!(
        a.is_clean(),
        "oracle violations (seed {:#x}): {:?}",
        sweep.seed,
        a.failures
    );
    assert_eq!(a.trials, a.boundaries_total(), "exhaustive = every point");
    assert!(a.per_kind[0] > 0, "no bus-op boundaries: {a:?}");
    assert!(a.per_kind[1] > 0, "no cp-window boundaries: {a:?}");
    assert!(a.per_kind[2] > 0, "no nvmc-burst boundaries: {a:?}");
    assert!(a.per_kind[3] > 0, "no maintenance boundaries: {a:?}");
    let b = sweep.sweep().expect("sweep rerun");
    assert_eq!(a, b, "sweep must be bit-identical at the same seed");
}

#[test]
fn exhaustive_sweep_one_channel_rank_level() {
    assert_clean_and_reproducible(CrashSweep::small(1));
}

#[test]
fn exhaustive_sweep_one_channel_per_bank() {
    // Covers the per-bank refresh path: NVMC burst-edge boundaries fall
    // inside individual REFpb windows rather than rank-level tRFC. The
    // per-bank preset trims the schedule — one burst per *bank* window
    // multiplies boundary density ~10×, and the sweep is exhaustive.
    assert_clean_and_reproducible(CrashSweep::small_per_bank(1));
}

#[test]
fn exhaustive_sweep_four_channels_rank_level() {
    // Records interleave page-granularly across 4 shards, so armed cuts
    // land mid-record on one shard while its siblings carry on.
    assert_clean_and_reproducible(CrashSweep::small(4));
}

#[test]
fn exhaustive_sweep_four_channels_per_bank() {
    assert_clean_and_reproducible(CrashSweep::small_per_bank(4));
}

#[test]
fn stratified_sweep_covers_every_class_and_stays_clean() {
    let sweep = CrashSweep::small(2).with_sampling(Sampling::Stratified { stride: 9 });
    let exhaustive_space = CrashSweep::small(2).sweep().expect("exhaustive");
    let r = sweep.sweep().expect("stratified sweep");
    assert!(r.is_clean(), "{:?}", r.failures);
    assert!(
        r.trials < exhaustive_space.trials,
        "stratified must probe fewer points ({} vs {})",
        r.trials,
        exhaustive_space.trials
    );
    // Same rehearsal space: sampling changes probing, not enumeration.
    assert_eq!(r.per_kind, exhaustive_space.per_kind);
}

/// The schedule whose second persist crosses the torn-flush window with
/// stale persisted state — the §V-C weak-domain counterexample source.
fn tearing_ops() -> Vec<CrashOp> {
    vec![
        CrashOp::Write(1),
        CrashOp::Read(2),
        CrashOp::Write(0),
        CrashOp::Persist(0),
        CrashOp::Maintenance,
        CrashOp::Write(0),
        CrashOp::Read(1),
        CrashOp::Persist(0),
    ]
}

#[test]
fn weak_domain_failures_shrink_to_committed_corpus() {
    // The sweep that produced the corpus still fails the same way, and
    // the shrinker still reduces it to a schedule no bigger than the
    // committed artifact.
    let sweep = CrashSweep::small(1).with_adr(false);
    let ops = tearing_ops();
    let r = sweep.sweep_ops(&ops).expect("weak-domain sweep");
    assert!(!r.is_clean(), "§V-C hazard disappeared — update the corpus");
    let failing = r.failures.first().expect("failures");
    let shrunk = sweep.shrink_failure(&ops, failing).expect("shrink");
    let committed = CrashSweep::parse_schedule(CORPUS[0].1).expect("corpus parses");
    assert!(
        shrunk.ops.len() <= committed.ops.len(),
        "shrinker regressed: {} ops vs committed {}",
        shrunk.ops.len(),
        committed.ops.len()
    );
}

#[test]
fn committed_crash_corpus_replays() {
    for (name, text) in CORPUS {
        let trial = CrashSweep::replay_schedule(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(trial.fired, "{name}: armed boundary never fired");
    }
}

/// Regenerates `tests/crash_corpus/` from the weak-domain sweeps. Run
/// manually (`cargo test --test crash_sweep -- --ignored`) after a
/// change that legitimately moves crash boundaries, then re-add the
/// explanatory comment blocks before committing.
#[test]
#[ignore = "writes tests/crash_corpus/; run manually to regenerate"]
fn regenerate_crash_corpus() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/crash_corpus");
    std::fs::create_dir_all(dir).expect("mkdir corpus");
    // Artifact 1: single-channel torn persist under the weak domain.
    let sweep = CrashSweep::small(1).with_adr(false);
    let ops = tearing_ops();
    let r = sweep.sweep_ops(&ops).expect("sweep");
    let failing = r.failures.first().expect("weak domain fails");
    let shrunk = sweep.shrink_failure(&ops, failing).expect("shrink");
    let text = sweep.to_schedule(
        &shrunk.ops,
        shrunk.shard,
        shrunk.boundary,
        shrunk.kind,
        &shrunk.rules,
    );
    std::fs::write(format!("{dir}/torn_persist_weak_adr.schedule"), &text).expect("write");
    println!("torn_persist_weak_adr:\n{text}");
    // Artifact 2: the same hazard torn *across shards* — the armed
    // shard's flush is cut while the sibling shard's half of the record
    // is already durable.
    let sweep2 = CrashSweep::small(2).with_adr(false);
    let r2 = sweep2.sweep_ops(&ops).expect("sweep 2ch");
    let failing2 = r2.failures.first().expect("weak domain fails cross-shard");
    let shrunk2 = sweep2.shrink_failure(&ops, failing2).expect("shrink 2ch");
    let text2 = sweep2.to_schedule(
        &shrunk2.ops,
        shrunk2.shard,
        shrunk2.boundary,
        shrunk2.kind,
        &shrunk2.rules,
    );
    std::fs::write(format!("{dir}/cross_shard_torn_persist.schedule"), &text2).expect("write");
    println!("cross_shard_torn_persist:\n{text2}");
    let _ = CrashPointKind::BusOp; // corpus kinds parse via from_name
}
