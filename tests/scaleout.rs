//! Scale-out executor tests at high channel counts:
//!
//! - a 64-channel run under the batched executor is bit-identical across
//!   same-seed reruns — throughput, latency distribution, per-shard
//!   utilisation and the full stats ledger;
//! - cached 64-channel throughput exceeds 8x the 4-channel figure at the
//!   same per-channel load (the recorded `BENCH_frontend.json`
//!   trajectory's acceptance floor);
//! - traces captured under the executor still pass every `nvdimmc-check`
//!   timing/race/refresh pass, and the capture epoch is actually
//!   populated (the executor must not swallow the recorders).

use nvdimmc::check::{check_conservation, check_shards};
use nvdimmc::core::{MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, PAGE_BYTES};
use nvdimmc::workloads::{ConcurrentFio, FioJob};

/// Pages per channel kept cached — small enough for debug-profile runs.
const PAGES_PER_CHANNEL: u64 = 64;

fn cached_front(channels: u32) -> (MultiChannelSystem, u64) {
    let mut sys = MultiChannelSystem::new(MultiChannelConfig::new(
        NvdimmCConfig::small_for_tests(),
        channels,
    ))
    .unwrap();
    let span = PAGES_PER_CHANNEL * PAGE_BYTES * u64::from(channels);
    for page in 0..span / PAGE_BYTES {
        sys.prefault(page).unwrap();
    }
    (sys, span)
}

fn cached_run(channels: u32, ops_per_thread: u64) -> nvdimmc::workloads::ConcurrentReport {
    let (mut sys, span) = cached_front(channels);
    let threads = 4 * channels;
    ConcurrentFio {
        job: FioJob::rand_read_4k(span, u64::from(threads) * ops_per_thread),
        threads,
    }
    .run_multichannel(&mut sys)
    .unwrap()
}

#[test]
fn sixty_four_channel_same_seed_rerun_is_bit_identical() {
    let a = cached_run(64, 8);
    let b = cached_run(64, 8);
    assert_eq!(a.kiops(), b.kiops(), "throughput diverged across reruns");
    assert_eq!(a.mean_latency(), b.mean_latency());
    assert_eq!(a.latency_percentile(50.0), b.latency_percentile(50.0));
    assert_eq!(a.latency_percentile(99.0), b.latency_percentile(99.0));
    assert_eq!(
        a.utilisation, b.utilisation,
        "per-shard utilisation diverged"
    );
    assert_eq!(a.conservation, b.conservation);
    assert_eq!(a.exec, b.exec, "executor ledger diverged");
    assert_eq!(a.utilisation.len(), 64);
}

#[test]
fn cached_64_channel_throughput_exceeds_8x_the_4_channel_figure() {
    let x4 = cached_run(4, 32).kiops();
    let x64 = cached_run(64, 32).kiops();
    assert!(
        x64 >= 8.0 * x4,
        "64-channel run only reached {:.1}x the 4-channel figure ({x64:.0} vs {x4:.0} KIOPS)",
        x64 / x4
    );
}

#[test]
fn executor_traces_verify_clean_at_scale() {
    let (mut sys, span) = cached_front(8);
    sys.set_trace_capture(true);
    let report = ConcurrentFio {
        job: FioJob::rand_read_4k(span, 1_024),
        threads: 32,
    }
    .run_multichannel(&mut sys)
    .unwrap();
    let traces = sys
        .set_trace_capture(false)
        .expect("disabling capture returns the epoch");
    assert_eq!(traces.len(), 8);
    for (shard, trace) in traces.iter().enumerate() {
        assert!(
            !trace.is_empty(),
            "shard {shard} captured nothing — the executor swallowed the recorder"
        );
    }
    let reports = check_shards(&traces, &sys.shards()[0].config().timing);
    for (shard, rep) in reports.iter().enumerate() {
        assert!(rep.is_clean(), "shard {shard} trace dirty:\n{rep}");
    }
    assert!(
        check_conservation(&report.conservation).is_clean(),
        "executor leaked requests: {:?}",
        report.conservation
    );
}
