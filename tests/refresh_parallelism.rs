//! Refresh–access parallelism: the per-bank NVMC window mode against the
//! rank-level legacy mode, differentially.
//!
//! - **Differential runs** — the same seed and workload under both
//!   refresh modes return bit-identical host-visible data (an
//!   order-independent digest over every read payload), produce traces
//!   that pass every `nvdimmc-check` pass, and the per-bank mode is
//!   strictly faster at 4+ channels (the whole point: the iMC keeps
//!   serving idle banks while the NVMC works the refreshing one).
//! - **Checker properties** — generated per-bank window schedules
//!   round-trip clean through `check_refresh_windows`; an injected
//!   out-of-window NVMC beat or same-bank host/NVMC overlap is flagged
//!   with exactly one diagnostic.
//! - **Golden corpus** — two small captured traces (one legal per-bank
//!   interleaving, one known violation) under `tests/refresh_corpus/`
//!   replay bit-identically on every run.

use nvdimmc::check::{check_refresh_windows, check_shards};
use nvdimmc::core::{
    BlockDevice, MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, PAGE_BYTES,
};
use nvdimmc::ddr::{BankAddr, BusMaster, Command, RefreshMode, SpeedBin, TimingParams, TraceEntry};
use nvdimmc::sim::{SimDuration, SimTime};
use nvdimmc::workloads::{ConcurrentFio, ConcurrentReport, FioJob};
use proptest::prelude::*;

const CHANNELS: u32 = 4;
const PAGES_PER_CHANNEL: u64 = 48;

/// Builds a front in the given mode, writes a distinct pattern to every
/// page single-threadedly (so concurrent reads observe deterministic
/// data with no cross-thread write races), then drives the same-seeded
/// concurrent random-read job over it with trace capture on.
fn run_mode(mode: RefreshMode) -> (ConcurrentReport, Vec<Vec<TraceEntry>>, TimingParams) {
    let cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(mode);
    let timing = cfg.timing;
    let mut sys = MultiChannelSystem::new(MultiChannelConfig::new(cfg, CHANNELS)).unwrap();
    let span = PAGES_PER_CHANNEL * PAGE_BYTES * u64::from(CHANNELS);
    let mut page = vec![0u8; PAGE_BYTES as usize];
    for p in 0..span / PAGE_BYTES {
        page.fill((p % 251) as u8);
        sys.write_at(p * PAGE_BYTES, &page).unwrap();
    }
    sys.set_trace_capture(true);
    let threads = 4 * CHANNELS;
    let report = ConcurrentFio {
        job: FioJob::rand_read_4k(span, u64::from(threads) * 16),
        threads,
    }
    .run_multichannel(&mut sys)
    .unwrap();
    let traces = sys
        .set_trace_capture(false)
        .expect("disabling capture returns the epoch");
    (report, traces, timing)
}

#[test]
fn same_seed_workload_is_host_visibly_identical_and_per_bank_is_faster() {
    let (rank, rank_traces, timing) = run_mode(RefreshMode::RankLevel);
    let (pb, pb_traces, _) = run_mode(RefreshMode::PerBank);

    // Host-visible equality: every read returned the same bytes from the
    // same offsets, whichever refresh mode carried the refreshes.
    assert_ne!(rank.data_digest, 0, "digest never folded a read payload");
    assert_eq!(
        rank.data_digest, pb.data_digest,
        "refresh mode changed host-visible data"
    );

    // Both modes' traces pass every checker pass — including the
    // per-bank legality rules on the per-bank trace.
    for (label, traces) in [("rank", &rank_traces), ("per-bank", &pb_traces)] {
        assert_eq!(traces.len(), CHANNELS as usize);
        for (shard, rep) in check_shards(traces, &timing).iter().enumerate() {
            assert!(rep.is_clean(), "{label} shard {shard} trace dirty:\n{rep}");
        }
    }
    // The per-bank trace really used per-bank refreshes.
    assert!(
        pb_traces
            .iter()
            .flatten()
            .any(|e| matches!(e.cmd, Command::RefreshBank { .. })),
        "per-bank run shows no REFpb on the bus"
    );

    // Refresh–access parallelism: strictly more ops/s at 4 channels.
    assert!(
        pb.kiops() > rank.kiops(),
        "per-bank mode not faster: {:.0} vs {:.0} KIOPS",
        pb.kiops(),
        rank.kiops()
    );
}

#[test]
fn same_seed_reruns_are_bit_identical_in_both_modes() {
    for mode in [RefreshMode::RankLevel, RefreshMode::PerBank] {
        let (a, _, _) = run_mode(mode);
        let (b, _, _) = run_mode(mode);
        assert_eq!(a.data_digest, b.data_digest, "{mode:?} digest diverged");
        assert_eq!(a.kiops(), b.kiops(), "{mode:?} throughput diverged");
        assert_eq!(a.mean_latency(), b.mean_latency(), "{mode:?}");
        assert_eq!(a.utilisation, b.utilisation, "{mode:?}");
        assert_eq!(a.exec, b.exec, "{mode:?} executor ledger diverged");
    }
}

// ---------------------------------------------------------------------
// Checker properties over synthetic per-bank schedules.
// ---------------------------------------------------------------------

fn timing() -> TimingParams {
    TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
}

fn entry(master: BusMaster, at: SimTime, cmd: Command) -> TraceEntry {
    TraceEntry::observe(master, at, cmd, &timing())
}

/// One slot of a generated per-bank schedule.
#[derive(Debug, Clone, Copy)]
struct Slot {
    stretch: u8,
    nvmc_uses_window: bool,
    host_hits_other_bank: bool,
}

/// A legal per-bank schedule: REFpb slots at the per-bank cadence in
/// bank round-robin order (so no bank ever starves and no window is
/// reopened while live), with optional NVMC work inside each window and
/// optional host work in a far-away bank mid-window.
fn legal_schedule(slots: &[Slot]) -> Vec<TraceEntry> {
    let t = timing();
    let base = SimTime::from_us(10);
    // Wide enough that a bank's previous (fully stretched) window has
    // always closed before any traffic targets it again.
    let spacing = t.trefi_pb().max(SimDuration::from_ns(500));
    let mut trace = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        let bank = BankAddr::from_index((i % 16) as u8);
        let ref_at = base + spacing * i as u64;
        trace.push(entry(
            BusMaster::HostImc,
            ref_at,
            Command::RefreshBank {
                bank,
                stretch: slot.stretch,
            },
        ));
        let (opens, _closes) = t.nvmc_window_bounds_pb(ref_at, slot.stretch);
        if slot.nvmc_uses_window {
            trace.push(entry(
                BusMaster::Nvmc,
                opens,
                Command::Activate { bank, row: 1 },
            ));
            trace.push(entry(
                BusMaster::Nvmc,
                opens + t.tras,
                Command::Precharge { bank },
            ));
        }
        if slot.host_hits_other_bank {
            // Eight slots away in the round-robin: that bank's own window
            // closed microseconds ago. Close the row afterwards so the
            // bank is idle when its next REFpb comes round.
            let other = BankAddr::from_index(((i + 8) % 16) as u8);
            trace.push(entry(
                BusMaster::HostImc,
                opens + t.trrd_s,
                Command::Activate {
                    bank: other,
                    row: 2,
                },
            ));
            trace.push(entry(
                BusMaster::HostImc,
                opens + t.trrd_s + t.tras,
                Command::Precharge { bank: other },
            ));
        }
    }
    trace
}

fn arb_slots() -> impl Strategy<Value = Vec<Slot>> {
    prop::collection::vec(
        (0u8..=15, any::<bool>(), any::<bool>()).prop_map(|(stretch, nvmc, host)| Slot {
            stretch,
            nvmc_uses_window: nvmc,
            host_hits_other_bank: host,
        }),
        1..48,
    )
}

proptest! {
    /// Any generated bank/window schedule round-trips clean: windows at
    /// the per-bank cadence with in-window NVMC work and other-bank host
    /// work carry no diagnostics.
    #[test]
    fn generated_pb_schedules_check_clean(slots in arb_slots()) {
        let trace = legal_schedule(&slots);
        let diags = check_refresh_windows(&trace, &timing());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    /// The schedule also survives the text round-trip: serialising every
    /// entry and parsing it back reproduces the same clean verdict on
    /// identical entries.
    #[test]
    fn schedules_survive_the_trace_text_roundtrip(slots in arb_slots()) {
        let trace = legal_schedule(&slots);
        let back: Vec<TraceEntry> = trace
            .iter()
            .map(|e| TraceEntry::from_line(&e.to_line()).expect("roundtrip"))
            .collect();
        prop_assert_eq!(&back, &trace);
        prop_assert!(check_refresh_windows(&back, &timing()).is_empty());
    }

    /// An NVMC beat injected before its bank's window opens is flagged
    /// with exactly one diagnostic.
    #[test]
    fn injected_early_nvmc_beat_is_flagged_exactly_once(
        slots in arb_slots(),
        pick in 0usize..4096,
    ) {
        let t = timing();
        let mut trace = legal_schedule(&slots);
        let refpbs: Vec<(SimTime, BankAddr)> = trace
            .iter()
            .filter_map(|e| match e.cmd {
                Command::RefreshBank { bank, .. } => Some((e.at, bank)),
                _ => None,
            })
            .collect();
        let (ref_at, bank) = refpbs[pick % refpbs.len()];
        // One nanosecond before tRFCpb elapses: the bank silicon is
        // still refreshing, so the NVMC may not touch it.
        trace.push(entry(
            BusMaster::Nvmc,
            ref_at + (t.trfc_pb - SimDuration::from_ns(1)),
            Command::Activate { bank, row: 7 },
        ));
        let diags = check_refresh_windows(&trace, &t);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "refresh/nvmc-outside-window");
    }

    /// A host beat injected into the refreshing bank mid-window is
    /// flagged with exactly one diagnostic.
    #[test]
    fn injected_same_bank_host_overlap_is_flagged_exactly_once(
        slots in arb_slots(),
        pick in 0usize..4096,
    ) {
        let t = timing();
        let mut trace = legal_schedule(&slots);
        let refpbs: Vec<(SimTime, BankAddr, u8)> = trace
            .iter()
            .filter_map(|e| match e.cmd {
                Command::RefreshBank { bank, stretch } => Some((e.at, bank, stretch)),
                _ => None,
            })
            .collect();
        let (ref_at, bank, stretch) = refpbs[pick % refpbs.len()];
        let (opens, _) = t.nvmc_window_bounds_pb(ref_at, stretch);
        trace.push(entry(
            BusMaster::HostImc,
            opens,
            Command::Activate { bank, row: 9 },
        ));
        let diags = check_refresh_windows(&trace, &t);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "refresh/host-inside-trfc");
    }
}

// ---------------------------------------------------------------------
// Golden-trace corpus replays.
// ---------------------------------------------------------------------

const CORPUS_LEGAL: &str = include_str!("refresh_corpus/pb_parallel_legal.trace");
const CORPUS_VIOLATION: &str = include_str!("refresh_corpus/pb_host_overlap_violation.trace");

fn parse_corpus(text: &str) -> Vec<TraceEntry> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| TraceEntry::from_line(l).expect("corpus line parses"))
        .collect()
}

/// The committed legal interleaving — NVMC inside per-bank windows,
/// host in other banks mid-window, banks refreshed round-robin — stays
/// clean under the full checker.
#[test]
fn corpus_legal_per_bank_interleaving_replays_clean() {
    let trace = parse_corpus(CORPUS_LEGAL);
    assert!(trace.len() > 16, "corpus artifact truncated");
    let report = nvdimmc::check::check_trace(&trace, &timing());
    assert!(report.is_clean(), "{report}");
}

/// The committed violation — a host ACT into the refreshing bank
/// mid-window — keeps firing exactly the recorded diagnostic.
#[test]
fn corpus_host_overlap_violation_still_fires() {
    let trace = parse_corpus(CORPUS_VIOLATION);
    let diags = check_refresh_windows(&trace, &timing());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "refresh/host-inside-trfc");
    assert!(
        diags[0].message.contains("per-bank window"),
        "{}",
        diags[0].message
    );
}

/// Regenerates the committed corpus artifacts. Run explicitly after a
/// deliberate trace-format or timing change:
/// `cargo test --test refresh_parallelism regenerate -- --ignored`
#[test]
#[ignore = "writes tests/refresh_corpus/; run on deliberate format changes only"]
fn regenerate_refresh_corpus() {
    let slots: Vec<Slot> = (0..24)
        .map(|i| Slot {
            stretch: (i % 7) as u8 * 2,
            nvmc_uses_window: i % 2 == 0,
            host_hits_other_bank: i % 3 != 0,
        })
        .collect();
    let legal = legal_schedule(&slots);
    assert!(check_refresh_windows(&legal, &timing()).is_empty());

    let t = timing();
    let mut violation = legal_schedule(&slots[..4]);
    let (ref_at, bank, stretch) = violation
        .iter()
        .filter_map(|e| match e.cmd {
            Command::RefreshBank { bank, stretch } => Some((e.at, bank, stretch)),
            _ => None,
        })
        .nth(1)
        .unwrap();
    let (opens, _) = t.nvmc_window_bounds_pb(ref_at, stretch);
    violation.push(entry(
        BusMaster::HostImc,
        opens,
        Command::Activate { bank, row: 9 },
    ));

    let render = |header: &str, trace: &[TraceEntry]| {
        let mut lines: Vec<String> = header.lines().map(|l| format!("# {l}")).collect();
        lines.extend(trace.iter().map(TraceEntry::to_line));
        lines.join("\n") + "\n"
    };
    std::fs::write(
        "tests/refresh_corpus/pb_parallel_legal.trace",
        render(
            "Legal per-bank interleaving: REFpb round-robin at the per-bank\n\
             cadence, NVMC ACT/PRE inside each window, host ACTs to a bank\n\
             eight slots away mid-window. Must stay check-clean.",
            &legal,
        ),
    )
    .unwrap();
    std::fs::write(
        "tests/refresh_corpus/pb_host_overlap_violation.trace",
        render(
            "Known violation: the final host ACT lands in the refreshing\n\
             bank inside its still-open per-bank window. Must keep firing\n\
             exactly one refresh/host-inside-trfc diagnostic.",
            &violation,
        ),
    )
    .unwrap();
}

// ---------------------------------------------------------------------
// Power-fail injection mid-refresh-window (crash-sweep machinery).
// ---------------------------------------------------------------------

use nvdimmc::core::{CoreError, CrashPointKind, QueuedDevice};

const SENTINEL_OFF: u64 = 40 * PAGE_BYTES;
const SENTINEL_BYTE: u8 = 0xA7;

/// One channel with a two-slot cache: every churn access misses, so the
/// NVMC has transfers pending in essentially every refresh window and
/// the run crosses NVMC-burst crash boundaries in both refresh modes.
fn crashable_sys(mode: RefreshMode) -> MultiChannelSystem {
    let mut cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(mode);
    cfg.cache_slots = 2;
    MultiChannelSystem::new(MultiChannelConfig::new(cfg, 1)).unwrap()
}

/// Persists a sentinel page, then churns a small footprint to keep NVMC
/// windows busy. Returns `(persist_done, resize_crossed)`: the crash
/// -boundary counts at which the sentinel's persist had completed and at
/// which the queue-depth hint jumped (forcing the per-bank planner to
/// shrink its window stretch — the mid-run stretch resize).
fn drive_churn(
    sys: &mut MultiChannelSystem,
    resize_at: Option<usize>,
) -> Result<(u64, u64), CoreError> {
    let pat = vec![SENTINEL_BYTE; PAGE_BYTES as usize];
    sys.write_at(SENTINEL_OFF, &pat)?;
    sys.persist(SENTINEL_OFF, PAGE_BYTES)?;
    let persist_done = sys.shards_mut()[0].crash_boundaries_crossed();
    let mut resize_crossed = 0;
    let mut buf = vec![0u8; PAGE_BYTES as usize];
    for i in 0..24usize {
        if resize_at == Some(i) {
            for s in sys.shards_mut() {
                s.note_queue_depth(12);
            }
            resize_crossed = sys.shards_mut()[0].crash_boundaries_crossed();
        }
        let page = (i % 8) as u64;
        if i % 3 == 0 {
            sys.read_at(page * PAGE_BYTES, &mut buf)?;
        } else {
            buf.fill((i % 251) as u8);
            sys.write_at(page * PAGE_BYTES, &buf)?;
        }
    }
    Ok((persist_done, resize_crossed))
}

/// Arms a power cut at boundary `k`, reruns the identical schedule,
/// recovers through the battery-backed dump + snapshot reboot, and
/// asserts the persisted sentinel survived byte-exactly.
fn cut_and_verify(mode: RefreshMode, resize_at: Option<usize>, k: u64) {
    let mut sys = crashable_sys(mode);
    sys.crash_arm(0, k);
    match drive_churn(&mut sys, resize_at) {
        Err(CoreError::PowerInterrupted) => {
            sys.power_fail(true).unwrap();
            sys = sys.into_crash_recovered().unwrap();
        }
        Ok(_) => panic!("{mode:?}: armed boundary {k} never fired"),
        Err(e) => panic!("{mode:?}: unexpected error at boundary {k}: {e}"),
    }
    let mut buf = vec![0u8; PAGE_BYTES as usize];
    sys.read_at(SENTINEL_OFF, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == SENTINEL_BYTE),
        "{mode:?}: persisted sentinel lost across a cut at boundary {k}"
    );
}

/// A power cut landing *inside* a refresh window — between NVMC burst
/// edges, while the window is servicing transfers — must never lose
/// acked-persisted data, in rank-level or per-bank (REFpb) mode.
#[test]
fn power_fail_mid_refresh_window_preserves_persisted_data_in_both_modes() {
    for mode in [RefreshMode::RankLevel, RefreshMode::PerBank] {
        let mut sys = crashable_sys(mode);
        sys.crash_enumerate_begin();
        let (persist_done, _) = drive_churn(&mut sys, None).unwrap();
        let points = sys.crash_enumerate_take();
        let bursts: Vec<u64> = points[0]
            .iter()
            .filter(|p| p.kind == CrashPointKind::NvmcBurst && p.index >= persist_done)
            .map(|p| p.index)
            .collect();
        assert!(
            !bursts.is_empty(),
            "{mode:?}: churn never crossed a post-persist NVMC-burst boundary"
        );
        for &k in bursts.iter().step_by((bursts.len() / 6).max(1)) {
            cut_and_verify(mode, None, k);
        }
    }
}

/// A power cut in the window(s) right after the per-bank planner
/// resizes its stretch (a deep queue-depth hint shrinks windows toward
/// the base REFpb span mid-run) must equally preserve persisted data.
/// Runs in both modes: rank level ignores the hint but takes the same
/// cuts, pinning the differential behaviour down.
#[test]
fn power_fail_mid_stretch_resize_preserves_persisted_data_in_both_modes() {
    const RESIZE_AT: usize = 8;
    for mode in [RefreshMode::RankLevel, RefreshMode::PerBank] {
        let mut sys = crashable_sys(mode);
        sys.set_trace_capture(true);
        sys.crash_enumerate_begin();
        let (_, resize_crossed) = drive_churn(&mut sys, Some(RESIZE_AT)).unwrap();
        let points = sys.crash_enumerate_take();
        let traces = sys.set_trace_capture(false).unwrap();
        if mode == RefreshMode::PerBank {
            // The hint really resized the windows: REFpb stretch codes
            // before and after the jump differ.
            let stretches: std::collections::BTreeSet<u8> = traces
                .iter()
                .flatten()
                .filter_map(|e| match e.cmd {
                    Command::RefreshBank { stretch, .. } => Some(stretch),
                    _ => None,
                })
                .collect();
            assert!(
                stretches.len() >= 2,
                "queue-depth jump never resized the stretch: {stretches:?}"
            );
        }
        let bursts: Vec<u64> = points[0]
            .iter()
            .filter(|p| p.kind == CrashPointKind::NvmcBurst && p.index >= resize_crossed)
            .map(|p| p.index)
            .collect();
        assert!(
            !bursts.is_empty(),
            "{mode:?}: no NVMC-burst boundary after the stretch resize"
        );
        for &k in bursts.iter().step_by((bursts.len() / 4).max(1)) {
            cut_and_verify(mode, Some(RESIZE_AT), k);
        }
    }
}
