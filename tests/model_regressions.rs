//! Regression suite for the `nvdimmc-model` protocol model checker.
//!
//! Two kinds of test live here:
//!
//! 1. **Corpus replays** — every counterexample schedule the checker has
//!    ever minimized is committed under `tests/model_corpus/` and
//!    replayed bit-identically on every run. A schedule that stops
//!    reproducing its recorded verdict means the transition system (or
//!    a fix it documents) regressed.
//! 2. **Explorer properties** — randomized schedules replay
//!    deterministically, and the DPOR-reduced exploration reaches the
//!    same invariant verdicts and terminal coverage as the naive
//!    full-interleaving sweep.

use nvdimmc_model::{explore, from_text, replay, Action, Mode, ModelParams, ShardAction};
use proptest::prelude::*;

const STALE_ACK: &str = include_str!("model_corpus/stale_ack_phase_alias.schedule");
const ACK_LOSS_POWER_CUT: &str = include_str!("model_corpus/ack_loss_power_cut.schedule");

/// The checker's first catch: under phase-only ack matching (the
/// pre-seq-echo protocol), transaction 2's 15-attempt retransmit ladder
/// wraps the 4-bit phase back onto transaction 1's phase, and the
/// driver accepts transaction 1's stale persistent ack for a writeback
/// the FPGA never executed.
#[test]
fn stale_ack_phase_alias_counterexample_still_fires() {
    let (params, schedule) = from_text(STALE_ACK).expect("corpus artifact parses");
    assert!(
        params.legacy_phase_match,
        "the bug needs phase-only matching"
    );
    let r = replay(&params, &schedule);
    assert_eq!(r.skipped, 0, "a minimized schedule has no dead actions");
    assert_eq!(
        r.violation.as_ref().map(|v| v.rule.as_str()),
        Some("persist/acked-unpersisted"),
        "{r:?}"
    );
}

/// The committed artifact is *minimal*: deleting any single action
/// loses the violation.
#[test]
fn stale_ack_counterexample_is_one_minimal() {
    let (params, schedule) = from_text(STALE_ACK).expect("corpus artifact parses");
    for i in 0..schedule.len() {
        let mut shorter = schedule.clone();
        shorter.remove(i);
        let r = replay(&params, &shorter);
        assert_ne!(
            r.violation.as_ref().map(|v| v.rule.as_str()),
            Some("persist/acked-unpersisted"),
            "dropping action {i} should lose the violation"
        );
    }
}

/// The shipped protocol's fix — the FPGA echoes the command's sequence
/// number in the ack, and the driver matches phase *and* seq — kills
/// this exact schedule.
#[test]
fn seq_echo_fix_defeats_the_stale_ack_schedule() {
    let (params, schedule) = from_text(STALE_ACK).expect("corpus artifact parses");
    let fixed = ModelParams {
        legacy_phase_match: false,
        ..params
    };
    let r = replay(&fixed, &schedule);
    assert_eq!(r.violation, None, "{r:?}");
}

/// The oracle-fix schedule: an executed-but-lost ack followed by a
/// power cut inside the ack-wait window. The recovery checker used to
/// misreport this as `recovery/ack-loss-unaccounted`; it must now
/// replay clean to a terminal state.
#[test]
fn ack_loss_power_cut_replays_clean() {
    let (params, schedule) = from_text(ACK_LOSS_POWER_CUT).expect("corpus artifact parses");
    let r = replay(&params, &schedule);
    assert_eq!(r.skipped, 0, "a minimized schedule has no dead actions");
    assert!(r.terminal, "the schedule must reach a terminal state");
    assert_eq!(r.violation, None, "{r:?}");
}

/// Exploring the bug-hunt instance from scratch still finds the
/// phase-alias bug — the corpus is reproducible, not a fossil.
#[test]
fn bug_hunt_exploration_rediscovers_the_stale_ack_bug() {
    let r = explore(&ModelParams::bug_hunt(), Mode::Persistent);
    let found = r.violation.expect("the bug must be rediscovered");
    assert_eq!(found.violation.rule, "persist/acked-unpersisted");
    // And the freshly found schedule replays to the same verdict.
    let replayed = replay(&ModelParams::bug_hunt(), &found.schedule);
    assert_eq!(
        replayed.violation.as_ref().map(|v| v.rule.as_str()),
        Some("persist/acked-unpersisted")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random schedules replay bit-identically: same applied/skipped
    /// counts, same verdict, twice in a row.
    #[test]
    fn random_schedules_replay_bit_identically(
        picks in prop::collection::vec((0usize..2, 0usize..11), 1..120)
    ) {
        let p = ModelParams {
            shards: 2,
            ..ModelParams::smoke()
        };
        let schedule: Vec<Action> = picks
            .into_iter()
            .map(|(shard, act)| Action { shard, act: nth_action(act) })
            .collect();
        let a = replay(&p, &schedule);
        let b = replay(&p, &schedule);
        prop_assert_eq!(a, b);
    }

    /// The DPOR (persistent-set) exploration reaches the same invariant
    /// verdict and the same terminal coverage as the naive sweep on
    /// randomized small instances — including legacy-protocol ones.
    #[test]
    fn dpor_and_naive_sweeps_agree(
        shards in 1usize..3,
        retransmits in 0u32..2,
        backoff in 1u32..3,
        faults in 0u32..2,
        single_shard_adversary in any::<bool>(),
        legacy in any::<bool>(),
    ) {
        // Crash/rebuild budgets multiply the two-shard naive sweep past
        // what a unit test should cost, so they are exercised on
        // single-shard instances only (the CI-bound two-shard sweep runs
        // via `nvdimmc-model compare`).
        let adversary = u32::from(shards == 1 && single_shard_adversary);
        let p = ModelParams {
            shards,
            txns_per_shard: 1,
            timeout_windows: 1,
            max_retransmits: retransmits,
            backoff,
            fault_budget: faults,
            crash_budget: adversary,
            rebuild_budget: adversary,
            legacy_phase_match: legacy,
            max_depth: 4096,
        };
        let naive = explore(&p, Mode::Naive);
        let reduced = explore(&p, Mode::Persistent);
        let naive_rule = naive.violation.as_ref().map(|v| v.violation.rule.clone());
        let reduced_rule = reduced.violation.as_ref().map(|v| v.violation.rule.clone());
        prop_assert_eq!(naive_rule, reduced_rule);
        if naive.violation.is_none() {
            prop_assert_eq!(naive.terminals, reduced.terminals);
            prop_assert!(reduced.distinct_states <= naive.distinct_states);
            prop_assert_eq!(naive.truncated, 0);
            prop_assert_eq!(reduced.truncated, 0);
        }
    }
}

/// Maps an index to a `ShardAction` (the model's full action alphabet).
fn nth_action(i: usize) -> ShardAction {
    use ShardAction::*;
    [
        Publish,
        FpgaPoll,
        FpgaPollCorrupt,
        FpgaRun,
        FpgaRunFail,
        FpgaAck,
        FpgaAckDrop,
        DriverPoll,
        DriverWindow,
        Repair,
        Crash,
    ][i % 11]
}
