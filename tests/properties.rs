//! Property-based tests (proptest) over the core data structures and
//! invariants:
//!
//! - SEC-DED corrects any single-bit error and never miscorrects double
//!   errors;
//! - the DDR4 CA encode/decode truth table round-trips every command;
//! - the DRAM cache never aliases pages or leaks slots under arbitrary
//!   operation sequences, for all three policies;
//! - the FTL matches a flat HashMap model under arbitrary I/O;
//! - the full System matches an in-memory oracle under arbitrary
//!   byte-granular traffic, with zero bus violations.

use proptest::prelude::*;

mod ecc_props {
    use super::*;
    use nvdimmc::nand::ecc::{Decode, Ecc};

    proptest! {
        #[test]
        fn clean_words_decode_clean(word in any::<u64>()) {
            let parity = Ecc::encode(word);
            prop_assert_eq!(Ecc::decode(word, parity), Decode::Clean(word));
        }

        #[test]
        fn any_single_data_bit_flip_corrected(word in any::<u64>(), bit in 0u32..64) {
            let parity = Ecc::encode(word);
            let corrupted = word ^ (1u64 << bit);
            prop_assert_eq!(Ecc::decode(corrupted, parity), Decode::Corrected(word));
        }

        #[test]
        fn any_single_parity_bit_flip_harmless(word in any::<u64>(), bit in 0u32..8) {
            let parity = Ecc::encode(word) ^ (1u8 << bit);
            match Ecc::decode(word, parity) {
                Decode::Corrected(w) => prop_assert_eq!(w, word),
                other => prop_assert!(false, "parity flip mishandled: {:?}", other),
            }
        }

        #[test]
        fn double_data_flips_detected(word in any::<u64>(), a in 0u32..64, b in 0u32..64) {
            prop_assume!(a != b);
            let parity = Ecc::encode(word);
            let corrupted = word ^ (1u64 << a) ^ (1u64 << b);
            prop_assert_eq!(Ecc::decode(corrupted, parity), Decode::Uncorrectable);
        }
    }
}

mod ca_props {
    use super::*;
    use nvdimmc::ddr::{BankAddr, CaPins, Command};

    fn arb_command() -> impl Strategy<Value = Command> {
        let bank = (0u8..4, 0u8..4).prop_map(|(g, b)| BankAddr::new(g, b));
        prop_oneof![
            Just(Command::Deselect),
            Just(Command::Refresh),
            Just(Command::PrechargeAll),
            Just(Command::SelfRefreshEnter),
            Just(Command::SelfRefreshExit),
            Just(Command::ZqCalibration),
            (bank.clone(), 0u32..(1 << 17)).prop_map(|(bank, row)| Command::Activate { bank, row }),
            (bank.clone(), 0u16..1024, any::<bool>()).prop_map(|(bank, col, ap)| Command::Read {
                bank,
                col,
                auto_precharge: ap
            }),
            (bank.clone(), 0u16..1024, any::<bool>()).prop_map(|(bank, col, ap)| Command::Write {
                bank,
                col,
                auto_precharge: ap
            }),
            bank.prop_map(|bank| Command::Precharge { bank }),
            (0u8..8, 0u16..(1 << 14))
                .prop_map(|(register, value)| Command::ModeRegisterSet { register, value }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(cmd in arb_command()) {
            let pins = CaPins::encode(&cmd);
            prop_assert_eq!(CaPins::decode(&pins), Some(cmd));
        }

        #[test]
        fn only_refresh_matches_detector_state(cmd in arb_command()) {
            let pins = CaPins::encode(&cmd);
            if pins.is_refresh_state() && pins.cke_prev {
                prop_assert_eq!(cmd, Command::Refresh);
            }
        }
    }
}

mod cache_props {
    use super::*;
    use nvdimmc::core::{DramCache, EvictionPolicyKind};
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Lookup(u64),
        Insert(u64),
        Dirty(u64),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                (0u64..64).prop_map(Op::Lookup),
                (0u64..64).prop_map(Op::Insert),
                (0u64..64).prop_map(Op::Dirty),
            ],
            1..200,
        )
    }

    fn arb_policy() -> impl Strategy<Value = EvictionPolicyKind> {
        prop_oneof![
            Just(EvictionPolicyKind::Lrc),
            Just(EvictionPolicyKind::Lru),
            Just(EvictionPolicyKind::Clock),
        ]
    }

    proptest! {
        #[test]
        fn cache_never_aliases_or_leaks(ops in arb_ops(), policy in arb_policy(), slots in 1u64..16) {
            let mut cache = DramCache::new(slots, policy);
            let mut model: HashMap<u64, u64> = HashMap::new(); // page -> slot
            for op in ops {
                match op {
                    Op::Lookup(p) => {
                        prop_assert_eq!(cache.peek(p), model.get(&p).copied());
                        cache.lookup(p);
                    }
                    Op::Insert(p) => {
                        if model.contains_key(&p) {
                            continue;
                        }
                        let slot = match cache.take_free_slot() {
                            Some(s) => s,
                            None => {
                                let (victim, vpage, _) =
                                    cache.pick_victim().expect("full cache has victims");
                                let freed = cache.evict(victim);
                                prop_assert_eq!(freed, vpage);
                                model.remove(&vpage);
                                victim
                            }
                        };
                        cache.fill(slot, p);
                        model.insert(p, slot);
                    }
                    Op::Dirty(p) => {
                        if let Some(&slot) = model.get(&p) {
                            cache.mark_dirty(slot);
                            prop_assert!(cache.is_dirty(slot));
                        }
                    }
                }
                // Invariants after every step.
                prop_assert_eq!(cache.resident(), model.len() as u64);
                prop_assert!(cache.resident() <= slots);
                // No two pages share a slot.
                let mut seen = std::collections::HashSet::new();
                for &s in model.values() {
                    prop_assert!(seen.insert(s), "slot {} aliased", s);
                }
            }
        }
    }
}

mod ftl_props {
    use super::*;
    use nvdimmc::nand::{Ftl, FtlConfig};
    use nvdimmc::sim::SimTime;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Write(u64, u8),
        Read(u64),
        Trim(u64),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                3 => (0u64..128, any::<u8>()).prop_map(|(l, f)| Op::Write(l, f)),
                2 => (0u64..128).prop_map(Op::Read),
                1 => (0u64..128).prop_map(Op::Trim),
            ],
            1..120,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ftl_matches_flat_model(ops in arb_ops()) {
            let mut ftl = Ftl::new(FtlConfig::small_for_tests());
            ftl.media_mut().set_ber_per_read(0.0);
            let mut model: HashMap<u64, u8> = HashMap::new();
            let mut t = SimTime::ZERO;
            for op in ops {
                match op {
                    Op::Write(lpn, fill) => {
                        t = ftl.write(lpn, &vec![fill; 4096], t).unwrap();
                        model.insert(lpn, fill);
                    }
                    Op::Read(lpn) => {
                        let (data, t2) = ftl.read(lpn, t).unwrap();
                        t = t2;
                        let expect = model.get(&lpn).copied().unwrap_or(0);
                        prop_assert!(data.iter().all(|&b| b == expect),
                            "lpn {} expected {:#x}", lpn, expect);
                    }
                    Op::Trim(lpn) => {
                        ftl.trim(lpn).unwrap();
                        model.remove(&lpn);
                    }
                }
            }
        }
    }
}

mod system_props {
    use super::*;
    use nvdimmc::core::{BlockDevice, NvdimmCConfig, System, PAGE_BYTES};

    #[derive(Debug, Clone)]
    enum Op {
        Write { off: u64, len: usize, fill: u8 },
        Read { off: u64, len: usize },
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        let span = 48 * PAGE_BYTES;
        prop::collection::vec(
            prop_oneof![
                (0..span - 8192, 1usize..8192, any::<u8>())
                    .prop_map(|(off, len, fill)| Op::Write { off, len, fill }),
                (0..span - 8192, 1usize..8192).prop_map(|(off, len)| Op::Read { off, len }),
            ],
            1..40,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn system_matches_flat_oracle(ops in arb_ops()) {
            let mut cfg = NvdimmCConfig::small_for_tests();
            cfg.cache_slots = 16; // force eviction traffic
            let mut sys = System::new(cfg).unwrap();
            let span = 48 * PAGE_BYTES as usize;
            let mut oracle = vec![0u8; span];
            for op in ops {
                match op {
                    Op::Write { off, len, fill } => {
                        let data = vec![fill; len];
                        sys.write_at(off, &data).unwrap();
                        oracle[off as usize..off as usize + len].copy_from_slice(&data);
                    }
                    Op::Read { off, len } => {
                        let mut buf = vec![0u8; len];
                        sys.read_at(off, &mut buf).unwrap();
                        prop_assert_eq!(&buf[..], &oracle[off as usize..off as usize + len]);
                    }
                }
            }
            prop_assert_eq!(sys.bus_stats().violations_rejected, 0);
        }
    }
}

mod interleave_props {
    use super::*;
    use nvdimmc::core::{InterleaveMap, PAGE_BYTES};

    fn arb_map() -> impl Strategy<Value = InterleaveMap> {
        (1u32..=8, 1u64..=8)
            .prop_map(|(channels, pages)| InterleaveMap::new(channels, pages * PAGE_BYTES).unwrap())
    }

    proptest! {
        #[test]
        fn locate_to_global_roundtrip(map in arb_map(), addr in 0u64..(1u64 << 40)) {
            let (shard, local) = map.locate(addr);
            prop_assert!(shard < map.channels());
            prop_assert_eq!(map.to_global(shard, local), addr);
        }

        #[test]
        fn to_global_locate_roundtrip(
            map in arb_map(),
            shard in 0u32..8,
            local in 0u64..(1u64 << 38),
        ) {
            prop_assume!(shard < map.channels());
            let addr = map.to_global(shard, local);
            prop_assert_eq!(map.locate(addr), (shard, local));
        }

        #[test]
        fn split_range_covers_exactly_in_order(
            map in arb_map(),
            offset in 0u64..(1u64 << 32),
            len in 1u64..(1u64 << 18),
        ) {
            let segs = map.split_range(offset, len);
            let mut covered = 0u64;
            for seg in &segs {
                prop_assert_eq!(seg.pos as u64, covered, "buffer positions contiguous");
                prop_assert_eq!(
                    map.locate(offset + covered),
                    (seg.shard, seg.local_offset)
                );
                prop_assert!(seg.len > 0);
                covered += seg.len;
            }
            prop_assert_eq!(covered, len);
            if map.channels() == 1 {
                prop_assert_eq!(segs.len(), 1, "one channel is always one segment");
            }
        }
    }
}

mod sim_props {
    use super::*;
    use nvdimmc::sim::{DeterministicRng, SimDuration, SimTime, Zipf};

    proptest! {
        #[test]
        fn time_arithmetic_consistent(a in 0u64..1 << 40, d in 0u64..1 << 40) {
            let t0 = SimTime::from_ps(a);
            let dur = SimDuration::from_ps(d);
            let t1 = t0 + dur;
            prop_assert_eq!(t1.since(t0), dur);
            prop_assert_eq!(t1 - dur, t0);
        }

        #[test]
        fn div_ceil_covers(work in 1u64..1 << 30, step in 1u64..1 << 20) {
            let w = SimDuration::from_ps(work);
            let s = SimDuration::from_ps(step);
            let n = w.div_ceil(s);
            prop_assert!(s * n >= w);
            prop_assert!(s * (n - 1) < w);
        }

        #[test]
        fn zipf_in_range(n in 1u64..100_000, theta in 0.0f64..0.999, seed in any::<u64>()) {
            let mut rng = DeterministicRng::new(seed);
            let z = Zipf::new(n, theta);
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}

mod cp_props {
    use super::*;
    use nvdimmc::core::{CpAck, CpCommand, CpOpcode};

    fn arb_cmd() -> impl Strategy<Value = CpCommand> {
        (
            0u8..16,
            any::<u8>(),
            prop_oneof![
                Just(CpOpcode::Cachefill),
                Just(CpOpcode::Writeback),
                Just(CpOpcode::WritebackCachefill),
            ],
            0u64..(1 << 28),
            0u64..(1 << 28),
            prop::option::of(0u64..(1 << 28)),
        )
            .prop_map(|(phase, seq, opcode, dram_slot, nand_page, wb)| CpCommand {
                phase,
                seq,
                opcode,
                dram_slot,
                nand_page,
                wb_nand_page: if opcode == CpOpcode::WritebackCachefill {
                    wb
                } else {
                    None
                },
            })
    }

    proptest! {
        #[test]
        fn cp_command_roundtrip(cmd in arb_cmd()) {
            prop_assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
        }

        #[test]
        fn cp_ack_roundtrip(
            phase in 0u8..16,
            seq in any::<u8>(),
            ok in any::<bool>(),
            code in any::<u8>(),
        ) {
            let ack = CpAck { phase, seq, ok, code: if ok { 0 } else { code } };
            prop_assert_eq!(CpAck::decode(&ack.encode()), Some(ack));
        }
    }
}

mod media_props {
    use super::*;
    use nvdimmc::nand::{NandGeometry, NandTiming, PhysPage, ZNandArray};
    use nvdimmc::sim::SimTime;

    #[derive(Debug, Clone)]
    enum Op {
        Program(u64),
        Erase(u64),
        Read(u64, u32),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                3 => (0u64..8).prop_map(Op::Program),
                1 => (0u64..8).prop_map(Op::Erase),
                2 => (0u64..8, 0u32..64).prop_map(|(b, p)| Op::Read(b, p)),
            ],
            1..150,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn media_enforces_nand_physics(ops in arb_ops()) {
            let mut media = ZNandArray::new(
                NandGeometry::small_for_tests(),
                NandTiming::znand_poc(),
                1,
            );
            media.set_ber_per_read(0.0);
            // Model: per-block write pointer.
            let mut wp = [0u32; 8];
            let mut t = SimTime::ZERO;
            for op in ops {
                match op {
                    Op::Program(b) => {
                        let page = PhysPage { block: b, page: wp[b as usize] };
                        if wp[b as usize] < 64 {
                            t = media.program(page, &[b as u8; 16], t).unwrap();
                            wp[b as usize] += 1;
                        }
                        prop_assert_eq!(media.write_pointer(b), wp[b as usize]);
                    }
                    Op::Erase(b) => {
                        t = media.erase(b, t).unwrap();
                        wp[b as usize] = 0;
                    }
                    Op::Read(b, p) => {
                        let res = media.read(PhysPage { block: b, page: p }, t);
                        if p < wp[b as usize] {
                            let (data, t2) = res.unwrap();
                            prop_assert_eq!(data[0], b as u8);
                            t = t2;
                        } else {
                            prop_assert!(res.is_err(), "read of unwritten page succeeded");
                        }
                    }
                }
            }
        }
    }
}

mod cpu_cache_props {
    use super::*;
    use nvdimmc::host::{CpuCache, Memory, VecMemory};

    #[derive(Debug, Clone)]
    enum Op {
        Load { addr: u64, len: usize },
        Store { addr: u64, len: usize, fill: u8 },
        Clflush(u64),
        Clwb(u64),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        let span = 4096u64;
        prop::collection::vec(
            prop_oneof![
                (0..span - 128, 1usize..128).prop_map(|(addr, len)| Op::Load { addr, len }),
                (0..span - 128, 1usize..128, any::<u8>()).prop_map(|(addr, len, fill)| Op::Store {
                    addr,
                    len,
                    fill
                }),
                (0..span).prop_map(Op::Clflush),
                (0..span).prop_map(Op::Clwb),
            ],
            1..150,
        )
    }

    proptest! {
        #[test]
        fn cache_plus_memory_equals_oracle(ops in arb_ops()) {
            let mut mem = VecMemory::new(4096);
            let mut cache = CpuCache::new(512, 2); // tiny: lots of eviction
            let mut oracle = vec![0u8; 4096];
            for op in ops {
                match op {
                    Op::Load { addr, len } => {
                        let mut buf = vec![0u8; len];
                        cache.load(&mut mem, addr, &mut buf);
                        prop_assert_eq!(&buf[..], &oracle[addr as usize..addr as usize + len]);
                    }
                    Op::Store { addr, len, fill } => {
                        let data = vec![fill; len];
                        cache.store(&mut mem, addr, &data);
                        oracle[addr as usize..addr as usize + len].fill(fill);
                    }
                    Op::Clflush(addr) => cache.clflush(&mut mem, addr),
                    Op::Clwb(addr) => cache.clwb(&mut mem, addr),
                }
            }
            // After flushing everything, raw memory must equal the oracle.
            cache.flush_all(&mut mem);
            let mut raw = vec![0u8; 4096];
            mem.read(0, &mut raw);
            prop_assert_eq!(raw, oracle);
        }
    }
}

mod histogram_props {
    use super::*;
    use nvdimmc::sim::{Histogram, SimDuration};

    proptest! {
        #[test]
        fn percentiles_monotone_and_bounded(samples in prop::collection::vec(1u64..1 << 40, 1..200)) {
            let mut h = Histogram::new();
            let mut min = u64::MAX;
            let mut max = 0;
            for &s in &samples {
                h.record(SimDuration::from_ps(s));
                min = min.min(s);
                max = max.max(s);
            }
            prop_assert_eq!(h.count(), samples.len() as u64);
            let mut last = SimDuration::ZERO;
            for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let v = h.percentile(p);
                prop_assert!(v >= last);
                prop_assert!(v <= SimDuration::from_ps(max));
                last = v;
            }
            // Mean within [min, max].
            prop_assert!(h.mean() >= SimDuration::from_ps(min).min(h.mean()));
            prop_assert!(h.mean() <= SimDuration::from_ps(max));
        }
    }
}

mod ring_props {
    use super::*;
    use nvdimmc::core::{ReqKind, ShardRequest, SpscRing, TenantId};
    use nvdimmc::sim::SimTime;
    use std::collections::VecDeque;

    fn req(seq: u64) -> ShardRequest {
        ShardRequest {
            seq,
            tenant: TenantId::HOST,
            thread: (seq % 7) as u32,
            kind: if seq.is_multiple_of(3) {
                ReqKind::Write
            } else {
                ReqKind::Read
            },
            local_offset: seq * 4096,
            len: 4096,
            not_before: SimTime::ZERO,
            data: Vec::new(),
        }
    }

    proptest! {
        /// The bounded SPSC ring is an exact FIFO against a VecDeque
        /// model under arbitrary interleavings of pushes and pops, and
        /// bounces (returns the request) exactly when the model is at
        /// capacity.
        #[test]
        fn ring_is_an_exact_bounded_fifo(
            capacity in 1usize..12,
            ops in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut ring = SpscRing::new(capacity);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut next = 0u64;
            for push in ops {
                if push {
                    match ring.try_push(req(next)) {
                        Ok(()) => {
                            prop_assert!(model.len() < capacity, "accepted past capacity");
                            model.push_back(next);
                        }
                        Err(bounced) => {
                            prop_assert_eq!(model.len(), capacity, "bounced below capacity");
                            prop_assert_eq!(bounced.seq, next, "bounce returned a different request");
                        }
                    }
                    next += 1;
                } else {
                    let got = ring.pop().map(|r| r.seq);
                    prop_assert_eq!(got, model.pop_front(), "FIFO order diverged");
                }
                prop_assert_eq!(ring.len(), model.len());
                prop_assert_eq!(ring.peek().map(|r| r.seq), model.front().copied());
            }
            // Drain: everything still inside comes out in order.
            while let Some(r) = ring.pop() {
                prop_assert_eq!(Some(r.seq), model.pop_front());
            }
            prop_assert!(model.is_empty());
        }
    }
}

mod coalesce_props {
    use super::*;
    use nvdimmc::core::{coalesce, ReqKind, ShardRequest};
    use nvdimmc::sim::SimTime;

    /// A batch of shard requests with adjacency planted often enough
    /// that merging actually happens: offsets walk forward with random
    /// gaps (gap 0 = exactly contiguous).
    fn arb_batch() -> impl Strategy<Value = Vec<ShardRequest>> {
        proptest::collection::vec((any::<bool>(), 0u64..3, 1u64..5, 0u64..1000), 1..40).prop_map(
            |specs| {
                let mut offset = 0u64;
                specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (is_read, gap_pages, len_pages, ps))| {
                        offset += gap_pages * 4096;
                        let local_offset = offset;
                        let len = len_pages * 4096;
                        offset += len;
                        let kind = if is_read {
                            ReqKind::Read
                        } else {
                            ReqKind::Write
                        };
                        ShardRequest {
                            seq: i as u64,
                            tenant: nvdimmc::core::TenantId::HOST,
                            thread: (i % 5) as u32,
                            kind,
                            local_offset,
                            len,
                            not_before: SimTime::ZERO + nvdimmc::sim::SimDuration::from_ps(ps),
                            data: if is_read {
                                Vec::new()
                            } else {
                                vec![i as u8; len as usize]
                            },
                        }
                    })
                    .collect()
            },
        )
    }

    proptest! {
        /// Every coalesced run covers exactly the union of its parents'
        /// pages — the parents tile `[local_offset, local_offset+len)`
        /// with no gap and no overlap — and the whole input multiset is
        /// preserved across the outputs in FIFO order.
        #[test]
        fn coalesced_runs_tile_their_parents_exactly(
            batch in arb_batch(),
            cap_pages in 1u64..8,
        ) {
            let inputs: Vec<(u64, ReqKind, u64, u64)> = batch
                .iter()
                .map(|r| (r.seq, r.kind, r.local_offset, r.len))
                .collect();
            let runs = coalesce(batch, cap_pages * 4096);
            let mut seen = Vec::new();
            for run in &runs {
                // Parents tile the merged span exactly.
                let mut cursor = run.local_offset;
                for p in &run.parents {
                    prop_assert_eq!(p.local_offset, cursor, "gap or overlap inside a run");
                    cursor += p.len;
                    seen.push((p.seq, run.kind, p.local_offset, p.len));
                }
                prop_assert_eq!(cursor, run.local_offset + run.len, "run length != parent union");
                // A multi-parent run respects the byte cap; singletons may
                // exceed it (one oversized request still has to be served).
                if run.parents.len() > 1 {
                    prop_assert!(run.len <= cap_pages * 4096, "merged run exceeds the DMA cap");
                }
                // Write runs carry the concatenated payloads.
                if run.kind == ReqKind::Write {
                    prop_assert_eq!(run.data.len() as u64, run.len);
                }
            }
            // Nothing lost, nothing invented, FIFO order preserved.
            prop_assert_eq!(seen, inputs);
        }
    }
}

mod merge_props {
    use super::*;
    use nvdimmc::core::{DumpReport, RecoveryStats};

    /// Builds a fully-populated ledger from 31 raw counters (one per
    /// field, in declaration order), so the merge laws are exercised
    /// over *every* field — a field someone forgets to merge would
    /// freeze at the left operand and break order independence.
    fn stats_from(v: &[u64]) -> RecoveryStats {
        let f = |i: usize| v[i % v.len()];
        RecoveryStats {
            nand_faults_injected: f(0),
            nand_read_retries: f(1),
            nand_retry_recovered: f(2),
            nand_retry_remaps: f(3),
            nand_uncorrectable_surfaced: f(4),
            acks_dropped: f(5),
            acks_corrupted: f(6),
            cmd_decode_failures: f(7),
            nand_errors_nacked: f(8),
            replayed_acks: f(9),
            cp_attempt_timeouts: f(10),
            cp_retransmits: f(11),
            cp_recovered: f(12),
            cp_transactions_failed: f(13),
            overrun_stalls: f(14),
            bursts_split: f(15),
            bursts_resumed: f(16),
            slots_corrupted: f(17),
            scrub_detected: f(18),
            scrub_refills: f(19),
            scrub_dropped_clean: f(20),
            cache_corruption_surfaced: f(21),
            power_fails_fired: f(22),
            power_fails_recovered: f(23),
            degraded_entries: f(24),
            rebuilds_started: f(25),
            rebuilds_completed: f(26),
            rebuilds_failed: f(27),
            rebuild_writebacks: f(28),
            rebuild_pages_lost: f(29),
            faults_scheduled: f(30),
            faults_fired: f(31),
        }
    }

    fn merged(a: &RecoveryStats, b: &RecoveryStats) -> RecoveryStats {
        let mut out = *a;
        out.merge(b);
        out
    }

    fn dump_merged(a: &DumpReport, b: &DumpReport) -> DumpReport {
        let mut out = *a;
        out.merge(b);
        out
    }

    /// Small counters (u32 range) so three-way sums cannot overflow.
    fn arb_counters() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(any::<u32>().prop_map(u64::from), 32usize)
    }

    fn arb_dump() -> impl Strategy<Value = DumpReport> {
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(s, b, d, adr)| {
            DumpReport {
                slots_flushed: u64::from(s),
                bytes_flushed: u64::from(b),
                slots_dropped: u64::from(d),
                adr_worked: adr,
            }
        })
    }

    proptest! {
        /// `RecoveryStats::merge` is associative: fanning shard ledgers
        /// into a tree or a left fold gives the same machine total.
        #[test]
        fn recovery_stats_merge_is_associative(
            a in arb_counters(),
            b in arb_counters(),
            c in arb_counters(),
        ) {
            let (a, b, c) = (stats_from(&a), stats_from(&b), stats_from(&c));
            prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        }

        /// ...and commutative, so the merged report is independent of
        /// shard iteration order.
        #[test]
        fn recovery_stats_merge_is_order_independent(
            a in arb_counters(),
            b in arb_counters(),
            c in arb_counters(),
        ) {
            let (a, b, c) = (stats_from(&a), stats_from(&b), stats_from(&c));
            let fwd = merged(&merged(&a, &b), &c);
            let rev = merged(&merged(&c, &b), &a);
            prop_assert_eq!(fwd, rev);
        }

        /// `DumpReport::merge` (the §V-C power-fail dump) is associative
        /// across shards, counters and `adr_worked` alike.
        #[test]
        fn dump_report_merge_is_associative(
            a in arb_dump(),
            b in arb_dump(),
            c in arb_dump(),
        ) {
            prop_assert_eq!(
                dump_merged(&dump_merged(&a, &b), &c),
                dump_merged(&a, &dump_merged(&b, &c))
            );
        }

        /// The `adr_worked` AND-merge is order-independent: one shard's
        /// lost WPQ taints the machine-wide strong-domain claim no
        /// matter where it sits in the fold.
        #[test]
        fn adr_worked_and_merge_is_order_independent(
            dumps in prop::collection::vec(arb_dump(), 1..8),
        ) {
            let fold = |iter: &mut dyn Iterator<Item = &DumpReport>| {
                let mut out = DumpReport {
                    adr_worked: true,
                    ..DumpReport::default()
                };
                for d in iter {
                    out.merge(d);
                }
                out
            };
            let fwd = fold(&mut dumps.iter());
            let rev = fold(&mut dumps.iter().rev());
            prop_assert_eq!(fwd, rev);
            prop_assert_eq!(fwd.adr_worked, dumps.iter().all(|d| d.adr_worked));
        }
    }
}
