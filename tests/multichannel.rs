//! End-to-end multi-channel tests:
//!
//! - the 1-channel front-end reproduces the bare `System` exactly
//!   (latencies, data and clock) — the paper's artifact is unchanged;
//! - a 2-channel front returns byte-identical data to a 1-channel front
//!   for the same logical request stream — interleaving is invisible to
//!   correctness;
//! - a 4-channel system under the concurrent fio driver scales aggregate
//!   bandwidth more than 2x over a single channel while every shard's
//!   bus trace passes the full `nvdimmc-check` pass and the scheduler's
//!   request-conservation invariant holds.

use nvdimmc::check::{check_conservation, check_shards};
use nvdimmc::core::{
    BlockDevice, MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, System, PAGE_BYTES,
};
use nvdimmc::sim::DeterministicRng;
use nvdimmc::workloads::{ConcurrentFio, FioJob};

fn front(channels: u32) -> MultiChannelSystem {
    MultiChannelSystem::new(MultiChannelConfig::new(
        NvdimmCConfig::small_for_tests(),
        channels,
    ))
    .unwrap()
}

#[test]
fn one_channel_front_reproduces_monolith() {
    let mut mono = System::new(NvdimmCConfig::small_for_tests()).unwrap();
    let mut one = front(1);
    let span = 40 * PAGE_BYTES;
    let mut rng = DeterministicRng::new(3);
    for i in 0..60 {
        let off = rng.gen_range(0..span - 2 * PAGE_BYTES);
        let len = rng.gen_range(1..2 * PAGE_BYTES) as usize;
        if rng.gen_bool(0.5) {
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            let a = mono.write_at(off, &data).unwrap();
            let b = one.write_at(off, &data).unwrap();
            assert_eq!(a, b, "op {i}: write latency diverged at {off}+{len}");
        } else {
            let mut x = vec![0u8; len];
            let mut y = vec![0u8; len];
            let a = mono.read_at(off, &mut x).unwrap();
            let b = one.read_at(off, &mut y).unwrap();
            assert_eq!(a, b, "op {i}: read latency diverged at {off}+{len}");
            assert_eq!(x, y, "op {i}: data diverged at {off}+{len}");
        }
    }
    assert_eq!(mono.now(), one.now(), "clocks diverged");
}

#[test]
fn two_channel_data_identical_to_one_channel() {
    let mut one = front(1);
    let mut two = front(2);
    let span = 48 * PAGE_BYTES;
    let mut rng = DeterministicRng::new(7);
    for i in 0..80 {
        // Unaligned offsets and multi-page lengths so requests straddle
        // stripe boundaries and exercise segment splitting.
        let off = rng.gen_range(0..span - 3 * PAGE_BYTES);
        let len = rng.gen_range(1..3 * PAGE_BYTES) as usize;
        if i % 3 != 0 {
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            one.write_at(off, &data).unwrap();
            two.write_at(off, &data).unwrap();
        } else {
            let mut a = vec![0u8; len];
            let mut b = vec![1u8; len];
            one.read_at(off, &mut a).unwrap();
            two.read_at(off, &mut b).unwrap();
            assert_eq!(a, b, "op {i}: data diverged at {off}+{len}");
        }
    }
    // The striped copy really did spread over both shards.
    for (i, s) in two.shards().iter().enumerate() {
        assert!(s.stats().writes > 0, "shard {i} untouched");
    }
}

#[test]
fn four_channel_concurrent_run_scales_and_verifies() {
    let mut bandwidth = Vec::new();
    for channels in [1u32, 4] {
        let mut sys = front(channels);
        // A working set inside each shard's cache so the run measures
        // cached bandwidth (the paper's scaling claim).
        let span = (4 << 20) * u64::from(channels);
        for page in 0..span / PAGE_BYTES {
            sys.prefault(page).unwrap();
        }
        sys.set_trace_capture(true);
        let run = ConcurrentFio {
            job: FioJob::rand_read_4k(span, 1_200),
            threads: 8,
        };
        let report = run.run_multichannel(&mut sys).unwrap();
        let traces = sys
            .set_trace_capture(false)
            .expect("disabling capture returns the drained traces");
        assert_eq!(traces.len(), channels as usize);
        let reports = check_shards(&traces, &sys.shards()[0].config().timing);
        for (shard, rep) in reports.iter().enumerate() {
            assert!(
                rep.is_clean(),
                "{channels}-channel run, shard {shard} trace dirty:\n{rep}"
            );
        }
        assert!(
            check_conservation(&report.conservation).is_clean(),
            "{channels}-channel run leaked requests: {:?}",
            report.conservation
        );
        bandwidth.push(report.mb_per_s());
    }
    assert!(
        bandwidth[1] > 2.0 * bandwidth[0],
        "4-channel bandwidth {:.0} MB/s is not >2x the single channel's {:.0} MB/s",
        bandwidth[1],
        bandwidth[0]
    );
}
